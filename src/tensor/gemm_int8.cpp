#include "tensor/gemm_int8.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "tensor/gemm.h"
#include "tensor/kernels/dispatch.h"
#include "util/threadpool.h"

namespace con::tensor::gemm {

namespace {

// Which kernel table served each integer product — the int8 twin of
// gemm.dispatch.blocked.* (gemm.cpp). Run manifests of an integer-path run
// must show these (bench/obs_validate.cpp --expect-integer-path).
obs::Counter& int8_counter(kernels::Isa isa) {
  static obs::Counter* by_isa[kernels::kNumIsas] = {
      &obs::counter("gemm.dispatch.int8.scalar"),
      &obs::counter("gemm.dispatch.int8.avx2"),
      &obs::counter("gemm.dispatch.int8.neon")};
  return *by_isa[static_cast<int>(isa)];
}

// Ascending pair skip lists over already-packed pair-interleaved strips:
// pair p of strip s is listed when any of its 2·lanes values is non-zero.
template <typename T>
void build_pair_lists(const T* data, Index ns, Index kpairs, Index lanes,
                      std::vector<std::int32_t>& nnz,
                      std::vector<std::int64_t>& ptr) {
  ptr.clear();
  ptr.reserve(static_cast<std::size_t>(ns) + 1);
  ptr.push_back(0);
  nnz.clear();
  for (Index s = 0; s < ns; ++s) {
    const T* strip = data + s * kpairs * 2 * lanes;
    for (Index p = 0; p < kpairs; ++p) {
      const T* blk = strip + p * 2 * lanes;
      bool live = false;
      for (Index t = 0; t < 2 * lanes; ++t) live = live || (blk[t] != 0);
      if (live) nnz.push_back(static_cast<std::int32_t>(p));
    }
    ptr.push_back(static_cast<std::int64_t>(nnz.size()));
  }
}

// Packs the columns [j0, j0+jn) of a raw k-major code matrix into
// kStripBInt8 pair-interleaved strips plus pair skip lists, reusing the
// caller's scratch (persists across panels — full strip lanes are fully
// overwritten for every k, so only the partial tail strip and, for odd
// depth, the never-written u = 1 lane of the final pair need re-zeroing).
void pack_int8_panel(const std::int8_t* raw, Index ld, Index depth,
                     Index kpairs, Index j0, Index jn,
                     std::vector<std::int8_t>& data, std::vector<char>& flags,
                     std::vector<std::int32_t>& nnz,
                     std::vector<std::int64_t>& ptr) {
  const Index ns = (jn + kStripBInt8 - 1) / kStripBInt8;
  const std::size_t need =
      static_cast<std::size_t>(ns * kpairs * 2 * kStripBInt8);
  // conlint:allow(hot-path-alloc): grows thread_local scratch to its high-water mark once; steady-state panels reuse capacity
  if (data.size() < need) data.resize(need);
  flags.assign(static_cast<std::size_t>(ns * kpairs), 0);
  if (jn % kStripBInt8 != 0) {
    std::int8_t* tail = data.data() + (ns - 1) * kpairs * 2 * kStripBInt8;
    std::fill(tail, tail + kpairs * 2 * kStripBInt8, std::int8_t{0});
  }
  // k outer keeps the reads streaming through the big matrix row by row.
  for (Index k = 0; k < depth; ++k) {
    const Index p = k >> 1;
    const Index u = k & 1;
    const std::int8_t* srow = raw + k * ld + j0;
    for (Index s = 0; s < ns; ++s) {
      const Index c0 = s * kStripBInt8;
      const Index cl = std::min<Index>(kStripBInt8, jn - c0);
      std::int8_t* dst =
          data.data() + ((s * kpairs + p) * kStripBInt8) * 2 + u;
      char nz = 0;
      for (Index t = 0; t < cl; ++t) {
        dst[t * 2] = srow[c0 + t];
        nz |= (dst[t * 2] != 0);
      }
      flags[s * kpairs + p] |= nz;
    }
  }
  if (depth % 2 != 0) {
    // Odd depth: the final pair's u = 1 lane is padding, never written
    // above, and the scratch may hold a previous layer's codes there.
    for (Index s = 0; s < ns; ++s) {
      std::int8_t* blk =
          data.data() + ((s * kpairs + (kpairs - 1)) * kStripBInt8) * 2;
      for (Index t = 0; t < kStripBInt8; ++t) blk[t * 2 + 1] = 0;
    }
  }
  ptr.assign(static_cast<std::size_t>(ns) + 1, 0);
  nnz.clear();
  for (Index s = 0; s < ns; ++s) {
    const char* fl = flags.data() + s * kpairs;
    for (Index p = 0; p < kpairs; ++p) {
      // conlint:allow(hot-path-alloc): appends into thread_local scratch that reaches its high-water mark after the first panel
      if (fl[p]) nnz.push_back(static_cast<std::int32_t>(p));
    }
    ptr[static_cast<std::size_t>(s) + 1] =
        static_cast<std::int64_t>(nnz.size());
  }
}

// Lowers one CHW code image into its patch-column block — the int8 twin of
// ops.cpp's im2col_image, padding emitting code 0.
void im2col_image_int8(const std::int8_t* src, std::int8_t* dst, Index dst_ld,
                       const Conv2dGeometry& g) {
  const Index oh = g.out_h(), ow = g.out_w();
  const bool unit = g.stride == 1;
  for (Index c = 0; c < g.in_channels; ++c) {
    for (Index kh = 0; kh < g.kernel_h; ++kh) {
      for (Index kw = 0; kw < g.kernel_w; ++kw) {
        const Index row = (c * g.kernel_h + kh) * g.kernel_w + kw;
        std::int8_t* drow = dst + row * dst_ld;
        const Index off = kw - g.padding;
        const Index x0 = unit ? std::max<Index>(0, -off) : 0;
        const Index x1 = unit ? std::min<Index>(ow, g.in_w - off) : 0;
        for (Index y = 0; y < oh; ++y) {
          const Index in_y = y * g.stride + kh - g.padding;
          if (in_y < 0 || in_y >= g.in_h) {
            for (Index x = 0; x < ow; ++x) drow[y * ow + x] = 0;
            continue;
          }
          const std::int8_t* srow = src + (c * g.in_h + in_y) * g.in_w;
          if (unit) {
            std::int8_t* d = drow + y * ow;
            for (Index x = 0; x < x0; ++x) d[x] = 0;
            for (Index x = x0; x < x1; ++x) d[x] = srow[x + off];
            for (Index x = std::max(x0, x1); x < ow; ++x) d[x] = 0;
            continue;
          }
          for (Index x = 0; x < ow; ++x) {
            const Index in_x = x * g.stride + kw - g.padding;
            drow[y * ow + x] =
                (in_x >= 0 && in_x < g.in_w) ? srow[in_x] : std::int8_t{0};
          }
        }
      }
    }
  }
}

}  // namespace

PackedInt8A pack_int8_a(const std::int8_t* codes, Index rows, Index depth) {
  PackedInt8A p;
  p.rows = rows;
  p.depth = depth;
  p.kpairs = (depth + 1) / 2;
  const Index ns = p.num_strips();
  p.data.assign(static_cast<std::size_t>(ns * p.kpairs * 2 * kStripAInt8), 0);
  for (Index s = 0; s < ns; ++s) {
    const Index r0 = s * kStripAInt8;
    const Index rl = std::min<Index>(kStripAInt8, rows - r0);
    std::int16_t* strip = p.data.data() + s * p.kpairs * 2 * kStripAInt8;
    for (Index i = 0; i < rl; ++i) {
      const std::int8_t* row = codes + (r0 + i) * depth;
      for (Index k = 0; k < depth; ++k) {
        strip[((k >> 1) * kStripAInt8 + i) * 2 + (k & 1)] = row[k];
      }
    }
  }
  build_pair_lists(p.data.data(), ns, p.kpairs, kStripAInt8, p.nnz_p,
                   p.nnz_ptr);
  return p;
}

PackedInt8B pack_int8_b(const std::int8_t* codes, Index rows, Index depth) {
  PackedInt8B p;
  p.rows = rows;
  p.depth = depth;
  p.kpairs = (depth + 1) / 2;
  const Index ns = p.num_strips();
  p.data.assign(static_cast<std::size_t>(ns * p.kpairs * 2 * kStripBInt8), 0);
  for (Index s = 0; s < ns; ++s) {
    const Index r0 = s * kStripBInt8;
    const Index rl = std::min<Index>(kStripBInt8, rows - r0);
    std::int8_t* strip = p.data.data() + s * p.kpairs * 2 * kStripBInt8;
    for (Index i = 0; i < rl; ++i) {
      const std::int8_t* row = codes + (r0 + i) * depth;
      for (Index k = 0; k < depth; ++k) {
        strip[((k >> 1) * kStripBInt8 + i) * 2 + (k & 1)] = row[k];
      }
    }
  }
  build_pair_lists(p.data.data(), ns, p.kpairs, kStripBInt8, p.nnz_p,
                   p.nnz_ptr);
  return p;
}

// conlint:hotpath begin
void matmul_int8(const PackedInt8A& a, const Int8BSource& bsrc, Index n,
                 std::int32_t* c) {
  const Index m = a.rows;
  if (m == 0 || n == 0) return;
  if (bsrc.packed != nullptr && bsrc.packed->kpairs != a.kpairs) {
    throw std::invalid_argument("matmul_int8: operand depth mismatch");
  }
  obs::Span span("gemm.int8");
  const kernels::KernelTable& kt = kernels::active();
  int8_counter(kt.isa).add(1);
  const Index kpairs = a.kpairs;
  const Index npanels = (n + kNC - 1) / kNC;
  const Index na_strips = a.num_strips();
  const std::int16_t* adata = a.data.data();
  const std::int32_t* annz = a.nnz_p.data();
  const std::int64_t* aptr = a.nnz_ptr.data();

  util::parallel_for(0, static_cast<std::size_t>(npanels), [&](std::size_t pi) {
    const Index j0 = static_cast<Index>(pi) * kNC;
    const Index jn = std::min<Index>(kNC, n - j0);
    const Index nb_strips = (jn + kStripBInt8 - 1) / kStripBInt8;
    // Per-worker scratch, reused across panels (gemm.cpp idiom): the
    // buffers stop allocating after the first panel on each thread.
    thread_local std::vector<std::int8_t> scratch;
    thread_local std::vector<char> sflags;
    thread_local std::vector<std::int32_t> snnz;
    thread_local std::vector<std::int64_t> sptr;
    const std::int8_t* bstrips;
    const std::int32_t* bnnz;
    const std::int64_t* bptr;
    if (bsrc.packed != nullptr) {
      // kNC % kStripBInt8 == 0, so a panel is a contiguous strip run.
      const Index s0 = j0 / kStripBInt8;
      bstrips = bsrc.packed->data.data() + s0 * kpairs * 2 * kStripBInt8;
      bnnz = bsrc.packed->nnz_p.data();
      bptr = bsrc.packed->nnz_ptr.data() + s0;
    } else {
      pack_int8_panel(bsrc.raw, bsrc.ld, a.depth, kpairs, j0, jn, scratch,
                      sflags, snnz, sptr);
      bstrips = scratch.data();
      bnnz = snnz.data();
      bptr = sptr.data();
    }
    for (Index sb = 0; sb < nb_strips; ++sb) {
      const Index j = j0 + sb * kStripBInt8;
      const Index nv = std::min<Index>(kStripBInt8, n - j);
      const std::int8_t* bp = bstrips + sb * kpairs * 2 * kStripBInt8;
      const std::int64_t bk0 = bptr[sb];
      const Index bnk = static_cast<Index>(bptr[sb + 1] - bk0);
      for (Index sa = 0; sa < na_strips; ++sa) {
        const Index i = sa * kStripAInt8;
        const Index mv = std::min<Index>(kStripAInt8, m - i);
        const std::int16_t* ap = adata + sa * kpairs * 2 * kStripAInt8;
        const std::int64_t ak0 = aptr[sa];
        const Index ank = static_cast<Index>(aptr[sa + 1] - ak0);
        // Iterate the sparser operand's pair list (every elided pair is
        // all-zero on one side — exactly nothing in integer arithmetic).
        const std::int32_t* kl = nullptr;
        Index nk = kpairs;
        if (ank <= bnk) {
          if (ank < kpairs) {
            kl = annz + ak0;
            nk = ank;
          }
        } else if (bnk < kpairs) {
          kl = bnnz + bk0;
          nk = bnk;
        }
        kt.int8_4x16(kpairs, ap, bp, kl, nk, c + i * n + j, n, mv, nv);
      }
    }
  });
}
// conlint:hotpath end

void quantize_codes(std::int8_t* dst, const float* src, float inv_step,
                    float lo, float hi, Index n) {
  static obs::Counter& calls = obs::counter("requantize.quant_i8");
  calls.add(1);
  kernels::active().quant_i8(dst, src, inv_step, lo, hi, n);
}

void requantize_col_bias(float* y, const std::int32_t* acc,
                         const std::int32_t* bias, int shift, std::int32_t lo,
                         std::int32_t hi, float scale, Index rows,
                         Index cols) {
  static obs::Counter& calls = obs::counter("requantize.col_bias");
  calls.add(1);
  const kernels::KernelTable& kt = kernels::active();
  util::parallel_for(0, static_cast<std::size_t>(rows), [&](std::size_t r) {
    kt.requant_col_bias(y + r * cols, acc + r * cols, bias, shift, lo, hi,
                        scale, 1, cols);
  });
}

void requantize_row_bias(float* y, const std::int32_t* acc,
                         const std::int32_t* bias, int shift, std::int32_t lo,
                         std::int32_t hi, float scale, Index rows,
                         Index cols) {
  static obs::Counter& calls = obs::counter("requantize.row_bias");
  calls.add(1);
  const kernels::KernelTable& kt = kernels::active();
  util::parallel_for(0, static_cast<std::size_t>(rows), [&](std::size_t r) {
    kt.requant_row_bias(y + r * cols, acc + r * cols,
                        bias + static_cast<Index>(r), shift, lo, hi, scale, 1,
                        cols);
  });
}

void im2col_int8_batch(const std::int8_t* batch, Index n,
                       const Conv2dGeometry& g, std::int8_t* cols) {
  const Index oh = g.out_h(), ow = g.out_w();
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("im2col_int8_batch: non-positive output size");
  }
  const Index plane = oh * ow;
  const Index rows = g.in_channels * g.kernel_h * g.kernel_w;
  const Index cols_per_row = n * plane;
  static obs::Counter& bytes = obs::counter("im2col.int8.bytes");
  bytes.add(static_cast<std::uint64_t>(rows) *
            static_cast<std::uint64_t>(cols_per_row));
  const Index image_stride = g.in_channels * g.in_h * g.in_w;
  for (Index i = 0; i < n; ++i) {
    im2col_image_int8(batch + i * image_stride, cols + i * plane,
                      cols_per_row, g);
  }
}

}  // namespace con::tensor::gemm
