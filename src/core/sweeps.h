// Compression sweeps: build a family of compressed models from one trained
// baseline and evaluate the attack taxonomy at every compression level.
// These produce the series plotted in Figures 2, 4 and 5 of the paper.
#pragma once

#include <vector>

#include "compress/finetune.h"
#include "core/study.h"
#include "core/transfer.h"

namespace con::core {

// One pruned model per density in `densities` (Fig. 2 x-axis), each
// fine-tuned with dynamic network surgery. `one_shot` switches to the
// Han-style ablation.
std::vector<nn::Sequential> build_pruned_family(
    const nn::Sequential& baseline, const data::Dataset& train,
    const std::vector<double>& densities,
    const compress::FineTuneConfig& finetune, bool one_shot = false);

// One quantised model per bitwidth in `bitwidths` (Fig. 5 x-axis), each
// fine-tuned quantisation-aware. `quantize_activations=false` is the
// weight-only ablation for the §4.2 activation-clipping claim.
std::vector<nn::Sequential> build_quantized_family(
    const nn::Sequential& baseline, const data::Dataset& train,
    const std::vector<int>& bitwidths,
    const compress::FineTuneConfig& finetune,
    bool quantize_activations = true);

// Scenario accuracies for every member of a compressed family under one
// attack. Cells are evaluated in parallel over the global thread pool, but
// each cell writes into its preallocated slot, so the output order matches
// the family order and the values are thread-count invariant.
std::vector<ScenarioPoint> sweep_scenarios(
    const nn::Sequential& baseline, const std::vector<nn::Sequential>& family,
    attacks::AttackKind attack, const attacks::AttackParams& params,
    const data::Dataset& eval_set);

// Store-backed family builders: each member is realised through the
// study's artifact store, so a family whose baseline and parameters are
// unchanged loads instead of fine-tuning, and changing one grid value
// rebuilds exactly that member.
std::vector<ModelArtifact> build_pruned_family(
    Study& study, const std::vector<double>& densities, bool one_shot = false);
std::vector<ModelArtifact> build_quantized_family(
    Study& study, const std::vector<int>& bitwidths,
    bool quantize_activations = true);

// One transfer-matrix cell, realised through the study's store: the four
// scenario accuracies are computed once per (baseline, variant, attack)
// closure and then served from the store. Storeless studies (or variants
// built without a store) always compute.
ScenarioPoint evaluate_scenarios_stored(Study& study,
                                        const ModelArtifact& variant,
                                        attacks::AttackKind attack,
                                        const attacks::AttackParams& params);

// Store-backed sweep over a family built by the builders above. The
// scenario-2 batch comes from Study::baseline_adversarial (itself a store
// artifact shared across attacks of the same closure); each cell is a
// transfer-cell derivation, evaluated in parallel on misses and loaded on
// hits. A "sweep index" artifact listing every cell is registered as the
// GC root sweep-<network>-<attack>, keeping the whole closure (cells,
// variants, adversarial batch, baseline) alive until the next sweep with a
// different configuration re-points it.
std::vector<ScenarioPoint> sweep_scenarios(Study& study,
                                           const std::vector<ModelArtifact>& family,
                                           attacks::AttackKind attack,
                                           const attacks::AttackParams& params);

// Deployed-integer scenario axis through the store. Same cell semantics
// as evaluate_scenarios_integer (the compressed model runs on the int8
// backend; attacks are crafted against the simulated graph), addressed by
// integer_cell_derivation so integer cells never collide with the float
// cells of the same (variant, attack) pair. Variants must be
// integer-executable — filter the family with compress::integer_executable
// first (of the paper's bitwidth grid, exactly the 4- and 8-bit members
// qualify). Non-const: the integer entry points populate per-layer packed
// code panels.
ScenarioPoint evaluate_scenarios_integer_stored(
    Study& study, ModelArtifact& variant, attacks::AttackKind attack,
    const attacks::AttackParams& params);

// Store-backed integer sweep; the index artifact roots the closure as
// sweep-int8-<network>-<attack>, parallel to the float sweep's root.
std::vector<ScenarioPoint> sweep_scenarios_integer(
    Study& study, std::vector<ModelArtifact>& family,
    attacks::AttackKind attack, const attacks::AttackParams& params);

// The paper's default sweep grids.
std::vector<double> paper_density_grid();
std::vector<int> paper_bitwidth_grid();

// "Preferred density" (§4.1): the smallest density whose clean accuracy is
// still within `tolerance` of the dense model's accuracy — the point where
// the network stops overfitting and the cyan line peaks. `densities` and
// `base_accuracies` are parallel arrays; densities need not be sorted.
double preferred_density(const std::vector<double>& densities,
                         const std::vector<double>& base_accuracies,
                         double dense_accuracy, double tolerance = 0.02);

}  // namespace con::core
