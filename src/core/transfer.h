// Transfer evaluation: generate adversarial samples on a source model and
// measure classification accuracy on a target model — the measurement at
// the heart of the study.
#pragma once

#include "attacks/attack.h"
#include "core/scenario.h"
#include "data/dataset.h"
#include "nn/sequential.h"

namespace con::core {

// Accuracy of `target` on adversarial samples crafted against `source` from
// `eval_set` (white-box on source). source == target gives the self-attack
// (Scenario 1) number.
double adversarial_accuracy(const nn::Sequential& source, const nn::Sequential& target,
                            attacks::AttackKind attack,
                            const attacks::AttackParams& params,
                            const data::Dataset& eval_set);

// All three scenario accuracies for one (baseline, compressed) pair plus
// the compressed model's clean accuracy — one point of a Figure 2/5 panel.
struct ScenarioPoint {
  double base_accuracy = 0.0;   // compressed model, no attack (blue line)
  double comp_to_comp = 0.0;    // scenario 1 (green line)
  double full_to_comp = 0.0;    // scenario 2 (cyan line)
  double comp_to_full = 0.0;    // scenario 3 (red line)
};

ScenarioPoint evaluate_scenarios(const nn::Sequential& baseline,
                                 const nn::Sequential& compressed,
                                 attacks::AttackKind attack,
                                 const attacks::AttackParams& params,
                                 const data::Dataset& eval_set);

// Variant taking the scenario-2 adversarial batch (crafted against the
// baseline) precomputed. The baseline attack does not depend on the
// compressed model, so sweeps over a whole compression family generate it
// once and share it across every member instead of regenerating identical
// samples per member.
ScenarioPoint evaluate_scenarios(const nn::Sequential& baseline,
                                 const nn::Sequential& compressed,
                                 attacks::AttackKind attack,
                                 const attacks::AttackParams& params,
                                 const data::Dataset& eval_set,
                                 const tensor::Tensor& baseline_adv);

// Deployed-integer scenario axis: the same four accuracies, but every
// evaluation of the compressed model runs on the real int8 backend
// (compress::integer_forward) instead of the simulated fake-quant float
// graph. Attack generation is unchanged — gradients only exist on the
// simulated model, which is exactly the white-box threat model for a
// deployed integer network: the attacker differentiates the published
// fake-quant graph and the samples transfer (or not) to the int32
// accumulate / requantise deployment. `compressed` must be
// integer-executable (compress::integer_blocker); throws otherwise.
// `compressed` is non-const because the integer entry points hang packed
// code panels off the layers' caches; logical state is untouched.
ScenarioPoint evaluate_scenarios_integer(const nn::Sequential& baseline,
                                         nn::Sequential& compressed,
                                         attacks::AttackKind attack,
                                         const attacks::AttackParams& params,
                                         const data::Dataset& eval_set);
ScenarioPoint evaluate_scenarios_integer(const nn::Sequential& baseline,
                                         nn::Sequential& compressed,
                                         attacks::AttackKind attack,
                                         const attacks::AttackParams& params,
                                         const data::Dataset& eval_set,
                                         const tensor::Tensor& baseline_adv);

// Transfer rate as used for the §3.3 cross-initialisation check: of the
// samples that fool `source`, the fraction that also fool `target`.
double transfer_rate(const nn::Sequential& source, const nn::Sequential& target,
                     attacks::AttackKind attack,
                     const attacks::AttackParams& params,
                     const data::Dataset& eval_set);

}  // namespace con::core
