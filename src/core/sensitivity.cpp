#include "core/sensitivity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "compress/fixed_point.h"
#include "nn/trainer.h"
#include "tensor/ops.h"

namespace con::core {

using tensor::Index;
using tensor::Tensor;

namespace {

// Magnitude threshold keeping round(density * n) entries (shared logic with
// the pruner, restated locally to keep the scan self-contained and
// side-effect-free on the model).
float scan_threshold(const Tensor& values, double density) {
  const Index n = values.numel();
  const auto keep =
      static_cast<Index>(std::llround(density * static_cast<double>(n)));
  if (keep >= n) return 0.0f;
  std::vector<float> mags(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) mags[static_cast<std::size_t>(i)] =
      std::fabs(values[i]);
  if (keep <= 0) {
    return *std::max_element(mags.begin(), mags.end()) * 2.0f + 1.0f;
  }
  const std::size_t cut = static_cast<std::size_t>(n - keep);
  std::nth_element(mags.begin(), mags.begin() + cut, mags.end());
  return mags[cut];
}

}  // namespace

std::vector<SensitivityPoint> prune_sensitivity_scan(
    nn::Sequential& model, const data::Dataset& eval_set,
    const std::vector<double>& densities, double* dense_accuracy) {
  const double base =
      nn::evaluate_accuracy(model, eval_set.images, eval_set.labels);
  if (dense_accuracy != nullptr) *dense_accuracy = base;

  std::vector<SensitivityPoint> points;
  for (nn::Parameter* p : model.parameters()) {
    if (!p->compressible) continue;
    const Tensor saved_mask = p->mask;
    for (double d : densities) {
      const float alpha = scan_threshold(p->value, d);
      Tensor mask(p->value.shape(), 1.0f);
      for (Index i = 0; i < mask.numel(); ++i) {
        if (std::fabs(p->value[i]) < alpha) mask[i] = 0.0f;
      }
      p->mask = std::move(mask);
      // Copy/move-assignment may reuse the old tensor's allocation, so the
      // packed-weight cache cannot rely on the pointer alone — bump.
      p->bump_version();
      points.push_back(SensitivityPoint{
          .parameter = p->name,
          .level = d,
          .accuracy = nn::evaluate_accuracy(model, eval_set.images,
                                            eval_set.labels)});
    }
    p->mask = saved_mask;
    p->bump_version();
  }
  return points;
}

std::vector<SensitivityPoint> quant_sensitivity_scan(
    nn::Sequential& model, const data::Dataset& eval_set,
    const std::vector<int>& bitwidths, double* dense_accuracy) {
  const double base =
      nn::evaluate_accuracy(model, eval_set.images, eval_set.labels);
  if (dense_accuracy != nullptr) *dense_accuracy = base;

  std::vector<SensitivityPoint> points;
  for (nn::Parameter* p : model.parameters()) {
    if (!p->compressible) continue;
    const auto saved_transform = p->transform;
    for (int bits : bitwidths) {
      p->transform = std::make_shared<const compress::FixedPointWeightTransform>(
          compress::FixedPointFormat::paper_format(bits));
      p->bump_version();
      points.push_back(SensitivityPoint{
          .parameter = p->name,
          .level = static_cast<double>(bits),
          .accuracy = nn::evaluate_accuracy(model, eval_set.images,
                                            eval_set.labels)});
    }
    p->transform = saved_transform;
    p->bump_version();
  }
  return points;
}

}  // namespace con::core
