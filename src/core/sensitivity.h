// Per-layer compression sensitivity scans.
//
// Classic compression methodology (Han et al. 2016b): before choosing
// per-layer budgets, measure how much accuracy each layer costs when ONLY
// that layer is compressed. The scan explains the paper's preferred-density
// observation mechanistically — some layers carry far more slack than
// others — and is the tool a deployment engineer runs before shipping.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/sequential.h"

namespace con::core {

struct SensitivityPoint {
  std::string parameter;  // e.g. "conv1.weight"
  double level = 0.0;     // density or bitwidth
  double accuracy = 0.0;  // test accuracy with only this parameter compressed
};

// For each compressible parameter and each density: magnitude-prune only
// that parameter (no fine-tuning) and evaluate. The all-dense accuracy is
// returned via `dense_accuracy`.
std::vector<SensitivityPoint> prune_sensitivity_scan(
    nn::Sequential& model, const data::Dataset& eval_set,
    const std::vector<double>& densities, double* dense_accuracy = nullptr);

// Same, quantising only one parameter (weights only) per measurement.
std::vector<SensitivityPoint> quant_sensitivity_scan(
    nn::Sequential& model, const data::Dataset& eval_set,
    const std::vector<int>& bitwidths, double* dense_accuracy = nullptr);

}  // namespace con::core
