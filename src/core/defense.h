// Adversarial training defence.
//
// The paper's related work (Szegedy et al., Papernot et al.) notes that
// training on adversarial samples hardens a model. This module implements
// the standard mixed-batch scheme — each step trains on clean samples plus
// adversarial versions crafted on the current weights — so the transfer
// harness can measure how the defence interacts with compression (an
// extension the paper leaves open).
#pragma once

#include "attacks/attack.h"
#include "data/dataset.h"
#include "nn/sequential.h"
#include "nn/trainer.h"

namespace con::core {

struct AdvTrainConfig {
  nn::TrainConfig train;
  attacks::AttackKind attack = attacks::AttackKind::kIfgsm;
  attacks::AttackParams attack_params{.epsilon = 0.02f, .iterations = 4};
  // Fraction of each batch replaced by adversarial versions (0.5 = half).
  double adversarial_fraction = 0.5;
};

struct AdvTrainStats {
  int steps = 0;
  double final_clean_accuracy = 0.0;  // on the training set
};

// Adversarially trains `model` in place.
AdvTrainStats adversarial_train(nn::Sequential& model,
                                const data::Dataset& train,
                                const AdvTrainConfig& config);

// Robustness summary of a model under one attack: clean accuracy,
// adversarial accuracy and the fooling rate among correctly-classified
// samples.
struct RobustnessReport {
  double clean_accuracy = 0.0;
  double adversarial_accuracy = 0.0;
  double fooling_rate = 0.0;
};

RobustnessReport measure_robustness(const nn::Sequential& model,
                                    const data::Dataset& eval_set,
                                    attacks::AttackKind attack,
                                    const attacks::AttackParams& params);

}  // namespace con::core
