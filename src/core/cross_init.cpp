#include "core/cross_init.h"

#include "core/transfer.h"
#include "nn/trainer.h"

namespace con::core {

CrossInitResult cross_init_transferability(Study& study,
                                           attacks::AttackKind attack,
                                           const attacks::AttackParams& params,
                                           std::uint64_t seed_a,
                                           std::uint64_t seed_b) {
  nn::Sequential model_a = study.train_fresh_baseline(seed_a);
  nn::Sequential model_b = study.train_fresh_baseline(seed_b);

  CrossInitResult result;
  result.accuracy_a = nn::evaluate_accuracy(
      model_a, study.test_set().images, study.test_set().labels);
  result.accuracy_b = nn::evaluate_accuracy(
      model_b, study.test_set().images, study.test_set().labels);
  result.transfer_a_to_b =
      transfer_rate(model_a, model_b, attack, params, study.attack_set());
  result.transfer_b_to_a =
      transfer_rate(model_b, model_a, attack, params, study.attack_set());
  return result;
}

}  // namespace con::core
