// The paper's compression-aware attack taxonomy (§3.1).
//
// "Compressed models" are pruned or quantised; the "baseline model" is the
// dense full-precision network they derive from.
//
//  Scenario 1 (COMP→COMP): samples generated on a compressed model and
//    applied to the same compressed model — the attacker bought the product.
//  Scenario 2 (FULL→COMP): samples generated on the baseline, applied to
//    compressed models — the attacker has the public model, the vendor
//    ships compressed derivatives.
//  Scenario 3 (COMP→FULL): samples generated on a compressed model, applied
//    to the hidden baseline — edge devices leak attacks against the cloud
//    model.
#pragma once

#include <string>

namespace con::core {

enum class Scenario {
  kCompToComp = 1,
  kFullToComp = 2,
  kCompToFull = 3,
};

std::string scenario_name(Scenario s);
std::string scenario_description(Scenario s);

}  // namespace con::core
