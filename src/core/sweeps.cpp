#include "core/sweeps.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "compress/integer_model.h"
#include "core/artifacts.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace con::core {

std::vector<nn::Sequential> build_pruned_family(
    const nn::Sequential& baseline, const data::Dataset& train,
    const std::vector<double>& densities,
    const compress::FineTuneConfig& finetune, bool one_shot) {
  std::vector<nn::Sequential> family;
  family.reserve(densities.size());
  for (double d : densities) {
    util::log_info("pruning %s to density %.3f", baseline.name().c_str(), d);
    family.push_back(
        compress::make_pruned_model(baseline, train, d, finetune, one_shot));
  }
  return family;
}

std::vector<nn::Sequential> build_quantized_family(
    const nn::Sequential& baseline, const data::Dataset& train,
    const std::vector<int>& bitwidths,
    const compress::FineTuneConfig& finetune, bool quantize_activations) {
  std::vector<nn::Sequential> family;
  family.reserve(bitwidths.size());
  for (int bits : bitwidths) {
    util::log_info("quantising %s to %d bits", baseline.name().c_str(), bits);
    family.push_back(compress::make_quantized_model(
        baseline, train, bits, finetune, quantize_activations));
  }
  return family;
}

std::vector<ScenarioPoint> sweep_scenarios(
    const nn::Sequential& baseline, const std::vector<nn::Sequential>& family,
    attacks::AttackKind attack, const attacks::AttackParams& params,
    const data::Dataset& eval_set) {
  std::vector<ScenarioPoint> points(family.size());
  if (family.empty()) return points;
  obs::ScopedPhase phase("sweep");
  // The scenario-2 batch (attack on the baseline) is identical for every
  // family member: generate it once up front and share it, instead of
  // paying one full attack generation per member.
  const tensor::Tensor baseline_adv = attacks::run_attack_batched(
      attack, baseline, eval_set.images, eval_set.labels, params,
      eval_set.num_classes());
  // One matrix cell per family member; each cell only reads the (shared,
  // immutable during execution) models and writes its own slot.
  static obs::Counter& cells = obs::counter("sweep.cells");
  util::parallel_for(0, family.size(), [&](std::size_t i) {
    obs::Span span(family[i].name(), "sweep_cell");
    points[i] = evaluate_scenarios(baseline, family[i], attack, params,
                                   eval_set, baseline_adv);
    cells.add(1);
  });
  return points;
}

std::vector<ModelArtifact> build_pruned_family(
    Study& study, const std::vector<double>& densities, bool one_shot) {
  std::vector<ModelArtifact> family;
  family.reserve(densities.size());
  for (double d : densities) {
    family.push_back(study.pruned_variant(d, one_shot));
  }
  return family;
}

std::vector<ModelArtifact> build_quantized_family(
    Study& study, const std::vector<int>& bitwidths,
    bool quantize_activations) {
  std::vector<ModelArtifact> family;
  family.reserve(bitwidths.size());
  for (int bits : bitwidths) {
    family.push_back(study.quantized_variant(bits, quantize_activations));
  }
  return family;
}

namespace {

// One cell through the store. Callers must have warmed the study's lazy
// state (baseline, hashes, adversarial batch) before invoking this from
// worker threads: the getters below then only read memoized values.
ScenarioPoint stored_cell(Study& study, const ModelArtifact& variant,
                          attacks::AttackKind attack,
                          const attacks::AttackParams& params,
                          const tensor::Tensor& baseline_adv,
                          store::Hash* cell_hash) {
  store::Store* s = study.store();
  if (s == nullptr || variant.drv.is_zero()) {
    return evaluate_scenarios(study.baseline(), variant.model, attack, params,
                              study.attack_set(), baseline_adv);
  }
  const store::Derivation drv = transfer_cell_derivation(
      study.baseline_drv_hash(), variant.drv, study.dataset_hash(),
      study.config().attack_size, attack, params, variant.model.name());
  std::optional<ScenarioPoint> point;
  const std::string path = s->realise(drv, [&](const std::string& tmp) {
    point = evaluate_scenarios(study.baseline(), variant.model, attack, params,
                               study.attack_set(), baseline_adv);
    save_scenario_point(*point, tmp);
  });
  if (!point) point = load_scenario_point(path);
  if (cell_hash != nullptr) *cell_hash = drv.hash();
  return *point;
}

// The integer twin of stored_cell: same realise-or-load shape, but the
// cell computes evaluate_scenarios_integer and is addressed by
// integer_cell_derivation (kind + fixed-point format attrs), so it can
// never serve or shadow a float cell.
ScenarioPoint stored_integer_cell(Study& study, ModelArtifact& variant,
                                  attacks::AttackKind attack,
                                  const attacks::AttackParams& params,
                                  const tensor::Tensor& baseline_adv,
                                  store::Hash* cell_hash) {
  store::Store* s = study.store();
  if (s == nullptr || variant.drv.is_zero()) {
    return evaluate_scenarios_integer(study.baseline(), variant.model, attack,
                                      params, study.attack_set(), baseline_adv);
  }
  const auto formats = compress::integer_formats(variant.model);
  const store::Derivation drv = integer_cell_derivation(
      study.baseline_drv_hash(), variant.drv, study.dataset_hash(),
      study.config().attack_size, attack, params, variant.model.name(),
      formats.first, formats.second);
  std::optional<ScenarioPoint> point;
  const std::string path = s->realise(drv, [&](const std::string& tmp) {
    point = evaluate_scenarios_integer(study.baseline(), variant.model, attack,
                                       params, study.attack_set(),
                                       baseline_adv);
    save_scenario_point(*point, tmp);
  });
  if (!point) point = load_scenario_point(path);
  if (cell_hash != nullptr) *cell_hash = drv.hash();
  return *point;
}

// Realise the sweep-index artifact over `cell_hashes` and point the
// `root_name` GC root at it, keeping the sweep's closure alive. No-op
// unless every cell went through the store.
void root_sweep_index(Study& study, attacks::AttackKind attack,
                      const attacks::AttackParams& params,
                      const std::vector<store::Hash>& cell_hashes,
                      const std::string& root_name) {
  store::Store* s = study.store();
  bool all_stored = s != nullptr;
  for (const store::Hash& h : cell_hashes) {
    all_stored = all_stored && !h.is_zero();
  }
  if (!all_stored) return;
  store::Derivation index("sweep-index", root_name);
  index.set("cells", static_cast<std::int64_t>(cell_hashes.size()));
  for (const store::Hash& h : cell_hashes) index.add_input(h);
  index.add_input(
      adversarial_derivation(study.baseline_drv_hash(), study.dataset_hash(),
                             study.config().attack_size, attack, params,
                             study.config().network)
          .hash());
  std::vector<std::string> lines;
  lines.reserve(cell_hashes.size());
  for (const store::Hash& h : cell_hashes) lines.push_back(h.short_hex());
  std::sort(lines.begin(), lines.end());
  const std::string path = s->realise(index, [&](const std::string& tmp) {
    std::ofstream f(tmp, std::ios::trunc);
    for (const std::string& line : lines) f << line << "\n";
    if (!f) throw std::runtime_error("sweep index write failed");
  });
  s->add_root("sweep-" + root_name, path);
}

}  // namespace

ScenarioPoint evaluate_scenarios_stored(Study& study,
                                        const ModelArtifact& variant,
                                        attacks::AttackKind attack,
                                        const attacks::AttackParams& params) {
  const tensor::Tensor baseline_adv = study.baseline_adversarial(attack, params);
  return stored_cell(study, variant, attack, params, baseline_adv, nullptr);
}

std::vector<ScenarioPoint> sweep_scenarios(
    Study& study, const std::vector<ModelArtifact>& family,
    attacks::AttackKind attack, const attacks::AttackParams& params) {
  std::vector<ScenarioPoint> points(family.size());
  if (family.empty()) return points;
  obs::ScopedPhase phase("sweep");
  // Warm all lazily-memoized study state on this thread; worker threads
  // below only read it.
  const tensor::Tensor baseline_adv =
      study.baseline_adversarial(attack, params);
  study.dataset_hash();
  study.baseline_drv_hash();
  std::vector<store::Hash> cell_hashes(family.size());
  static obs::Counter& cells = obs::counter("sweep.cells");
  util::parallel_for(0, family.size(), [&](std::size_t i) {
    obs::Span span(family[i].model.name(), "sweep_cell");
    points[i] =
        stored_cell(study, family[i], attack, params, baseline_adv,
                    &cell_hashes[i]);
    cells.add(1);
  });

  // The sweep index is a tiny text artifact whose inputs are every cell
  // (and, transitively via the cells' own provenance, the variants and
  // baseline) plus the shared adversarial batch. Rooting it keeps the
  // sweep's full closure alive; a sweep with any changed axis produces a
  // new index and re-points the root, stranding the old closure for gc().
  root_sweep_index(study, attack, params, cell_hashes,
                   study.config().network + "-" + attacks::attack_name(attack));
  return points;
}

ScenarioPoint evaluate_scenarios_integer_stored(
    Study& study, ModelArtifact& variant, attacks::AttackKind attack,
    const attacks::AttackParams& params) {
  const tensor::Tensor baseline_adv = study.baseline_adversarial(attack, params);
  return stored_integer_cell(study, variant, attack, params, baseline_adv,
                             nullptr);
}

std::vector<ScenarioPoint> sweep_scenarios_integer(
    Study& study, std::vector<ModelArtifact>& family,
    attacks::AttackKind attack, const attacks::AttackParams& params) {
  std::vector<ScenarioPoint> points(family.size());
  if (family.empty()) return points;
  obs::ScopedPhase phase("sweep");
  // Reject non-executable members up front, before spending any attack
  // generation: a throw from a worker thread would lose the blocker text.
  for (ModelArtifact& m : family) {
    std::string why = compress::integer_blocker(m.model);
    if (!why.empty()) {
      throw std::invalid_argument("sweep_scenarios_integer: " +
                                  m.model.name() + ": " + why);
    }
  }
  const tensor::Tensor baseline_adv =
      study.baseline_adversarial(attack, params);
  study.dataset_hash();
  study.baseline_drv_hash();
  std::vector<store::Hash> cell_hashes(family.size());
  static obs::Counter& cells = obs::counter("sweep.cells.int8");
  util::parallel_for(0, family.size(), [&](std::size_t i) {
    obs::Span span(family[i].model.name(), "sweep_cell_int8");
    points[i] = stored_integer_cell(study, family[i], attack, params,
                                    baseline_adv, &cell_hashes[i]);
    cells.add(1);
  });
  root_sweep_index(study, attack, params, cell_hashes,
                   "int8-" + study.config().network + "-" +
                       attacks::attack_name(attack));
  return points;
}

std::vector<double> paper_density_grid() {
  // Fig. 2 spans dense down to extreme sparsity; log-ish spacing puts
  // resolution where the interesting transitions are.
  return {1.0, 0.8, 0.6, 0.4, 0.3, 0.2, 0.1, 0.05, 0.03};
}

std::vector<int> paper_bitwidth_grid() {
  // Fig. 5 x-axis: fixed-point bitwidths; behaviour is flat above 8 bits
  // and changes sharply at 4 (1 integer bit).
  return {4, 8, 12, 16, 24, 32};
}

double preferred_density(const std::vector<double>& densities,
                         const std::vector<double>& base_accuracies,
                         double dense_accuracy, double tolerance) {
  if (densities.size() != base_accuracies.size() || densities.empty()) {
    throw std::invalid_argument("preferred_density: bad inputs");
  }
  // Sort points by density descending, walk toward sparsity while accuracy
  // holds; the last density before the drop is preferred.
  std::vector<std::size_t> order(densities.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return densities[a] > densities[b];
  });
  double preferred = densities[order.front()];
  for (std::size_t idx : order) {
    if (base_accuracies[idx] + tolerance >= dense_accuracy) {
      preferred = densities[idx];
    } else {
      break;
    }
  }
  return preferred;
}

}  // namespace con::core
