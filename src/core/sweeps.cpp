#include "core/sweeps.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace con::core {

std::vector<nn::Sequential> build_pruned_family(
    const nn::Sequential& baseline, const data::Dataset& train,
    const std::vector<double>& densities,
    const compress::FineTuneConfig& finetune, bool one_shot) {
  std::vector<nn::Sequential> family;
  family.reserve(densities.size());
  for (double d : densities) {
    util::log_info("pruning %s to density %.3f", baseline.name().c_str(), d);
    family.push_back(
        compress::make_pruned_model(baseline, train, d, finetune, one_shot));
  }
  return family;
}

std::vector<nn::Sequential> build_quantized_family(
    const nn::Sequential& baseline, const data::Dataset& train,
    const std::vector<int>& bitwidths,
    const compress::FineTuneConfig& finetune, bool quantize_activations) {
  std::vector<nn::Sequential> family;
  family.reserve(bitwidths.size());
  for (int bits : bitwidths) {
    util::log_info("quantising %s to %d bits", baseline.name().c_str(), bits);
    family.push_back(compress::make_quantized_model(
        baseline, train, bits, finetune, quantize_activations));
  }
  return family;
}

std::vector<ScenarioPoint> sweep_scenarios(
    const nn::Sequential& baseline, const std::vector<nn::Sequential>& family,
    attacks::AttackKind attack, const attacks::AttackParams& params,
    const data::Dataset& eval_set) {
  std::vector<ScenarioPoint> points(family.size());
  if (family.empty()) return points;
  // The scenario-2 batch (attack on the baseline) is identical for every
  // family member: generate it once up front and share it, instead of
  // paying one full attack generation per member.
  const tensor::Tensor baseline_adv = attacks::run_attack_batched(
      attack, baseline, eval_set.images, eval_set.labels, params,
      eval_set.num_classes());
  // One matrix cell per family member; each cell only reads the (shared,
  // immutable during execution) models and writes its own slot.
  static obs::Counter& cells = obs::counter("sweep.cells");
  util::parallel_for(0, family.size(), [&](std::size_t i) {
    obs::Span span(family[i].name(), "sweep_cell");
    points[i] = evaluate_scenarios(baseline, family[i], attack, params,
                                   eval_set, baseline_adv);
    cells.add(1);
  });
  return points;
}

std::vector<double> paper_density_grid() {
  // Fig. 2 spans dense down to extreme sparsity; log-ish spacing puts
  // resolution where the interesting transitions are.
  return {1.0, 0.8, 0.6, 0.4, 0.3, 0.2, 0.1, 0.05, 0.03};
}

std::vector<int> paper_bitwidth_grid() {
  // Fig. 5 x-axis: fixed-point bitwidths; behaviour is flat above 8 bits
  // and changes sharply at 4 (1 integer bit).
  return {4, 8, 12, 16, 24, 32};
}

double preferred_density(const std::vector<double>& densities,
                         const std::vector<double>& base_accuracies,
                         double dense_accuracy, double tolerance) {
  if (densities.size() != base_accuracies.size() || densities.empty()) {
    throw std::invalid_argument("preferred_density: bad inputs");
  }
  // Sort points by density descending, walk toward sparsity while accuracy
  // holds; the last density before the drop is preferred.
  std::vector<std::size_t> order(densities.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return densities[a] > densities[b];
  });
  double preferred = densities[order.front()];
  for (std::size_t idx : order) {
    if (base_accuracies[idx] + tolerance >= dense_accuracy) {
      preferred = densities[idx];
    } else {
      break;
    }
  }
  return preferred;
}

}  // namespace con::core
