#include "core/scenario.h"

#include <stdexcept>

namespace con::core {

std::string scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kCompToComp: return "COMP->COMP";
    case Scenario::kFullToComp: return "FULL->COMP";
    case Scenario::kCompToFull: return "COMP->FULL";
  }
  throw std::logic_error("unreachable scenario");
}

std::string scenario_description(Scenario s) {
  switch (s) {
    case Scenario::kCompToComp:
      return "adversarial samples generated and applied on the same "
             "compressed model (attacker owns the product)";
    case Scenario::kFullToComp:
      return "adversarial samples generated on the baseline model, applied "
             "to compressed models (public model, proprietary derivatives)";
    case Scenario::kCompToFull:
      return "adversarial samples generated on compressed models, applied "
             "to the hidden baseline model (edge device leaks the attack)";
  }
  throw std::logic_error("unreachable scenario");
}

}  // namespace con::core
