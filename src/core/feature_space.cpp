#include "core/feature_space.h"

#include <cmath>
#include <map>
#include <stdexcept>

#include "tensor/ops.h"

namespace con::core {

using tensor::Index;
using tensor::Tensor;

namespace {

// Column-centre a matrix in place.
void center_columns(Tensor& m) {
  const Index rows = m.dim(0), cols = m.dim(1);
  for (Index c = 0; c < cols; ++c) {
    double mean = 0.0;
    for (Index r = 0; r < rows; ++r) mean += m[r * cols + c];
    mean /= static_cast<double>(rows);
    for (Index r = 0; r < rows; ++r) {
      m[r * cols + c] -= static_cast<float>(mean);
    }
  }
}

// Squared Frobenius norm of X^T Y, computed through the n x n Gram matrices
// so cost stays O(n^2 (p + q)) with small n (probe batches are small).
double hsic_linear(const Tensor& gram_x, const Tensor& gram_y) {
  double acc = 0.0;
  for (Index i = 0; i < gram_x.numel(); ++i) {
    acc += static_cast<double>(gram_x[i]) * gram_y[i];
  }
  return acc;
}

}  // namespace

double linear_cka(const Tensor& x, const Tensor& y) {
  if (x.rank() != 2 || y.rank() != 2 || x.dim(0) != y.dim(0)) {
    throw std::invalid_argument(
        "linear_cka: expected [n, p] and [n, q] with matching n");
  }
  if (x.dim(0) < 2) {
    throw std::invalid_argument("linear_cka: need at least 2 samples");
  }
  Tensor xc = x;
  Tensor yc = y;
  center_columns(xc);
  center_columns(yc);
  // Gram matrices K = Xc Xc^T, L = Yc Yc^T.
  Tensor k = tensor::matmul_nt(xc, xc);
  Tensor l = tensor::matmul_nt(yc, yc);
  const double cross = hsic_linear(k, l);
  const double kk = hsic_linear(k, k);
  const double ll = hsic_linear(l, l);
  if (kk < 1e-12 || ll < 1e-12) return 0.0;
  return cross / std::sqrt(kk * ll);
}

Tensor layer_activation_matrix(const nn::Sequential& model, const Tensor& batch,
                               std::size_t layer_index) {
  if (layer_index >= model.num_layers()) {
    throw std::out_of_range("layer_activation_matrix: bad layer index");
  }
  nn::ForwardTape tape(/*accumulate_param_grads=*/false);
  Tensor h = batch;
  for (std::size_t i = 0; i <= layer_index; ++i) {
    h = model.layer(i).forward(h, /*train=*/false, tape.slot(i));
  }
  const Index n = h.dim(0);
  return h.reshaped({n, h.numel() / n});
}

std::vector<LayerSimilarity> feature_space_similarity(
    const nn::Sequential& reference, const nn::Sequential& other, const Tensor& batch) {
  // Collect activations by layer name in both models (quantisation passes
  // insert extra layers, so positions do not line up — names do).
  auto collect = [&](const nn::Sequential& m) {
    std::map<std::string, Tensor> acts;
    nn::ForwardTape tape(/*accumulate_param_grads=*/false);
    Tensor h = batch;
    for (std::size_t i = 0; i < m.num_layers(); ++i) {
      h = m.layer(i).forward(h, /*train=*/false, tape.slot(i));
      const Index n = h.dim(0);
      acts[m.layer(i).name()] = h.reshaped({n, h.numel() / n});
    }
    return acts;
  };
  std::map<std::string, Tensor> ref_acts = collect(reference);
  std::map<std::string, Tensor> other_acts = collect(other);

  std::vector<LayerSimilarity> result;
  for (std::size_t i = 0; i < reference.num_layers(); ++i) {
    const std::string& name = reference.layer(i).name();
    auto it = other_acts.find(name);
    if (it == other_acts.end()) continue;
    result.push_back(LayerSimilarity{
        .layer_index = i,
        .layer_name = name,
        .cka = linear_cka(ref_acts.at(name), it->second)});
  }
  return result;
}

double mean_feature_similarity(const nn::Sequential& reference,
                               const nn::Sequential& other, const Tensor& batch) {
  const auto sims = feature_space_similarity(reference, other, batch);
  if (sims.empty()) {
    throw std::invalid_argument(
        "mean_feature_similarity: no layers matched by name");
  }
  double acc = 0.0;
  for (const LayerSimilarity& s : sims) acc += s.cka;
  return acc / static_cast<double>(sims.size());
}

}  // namespace con::core
