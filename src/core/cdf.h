// Distribution analysis for Figure 6: cumulative distribution functions of
// all weights and all activations of a (quantised) model.
#pragma once

#include <vector>

#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace con::core {

// Empirical CDF sampled at `points` evenly-spaced x positions spanning
// [min, max] of the data.
struct Cdf {
  std::vector<float> xs;
  std::vector<double> ps;  // P(value <= x)
};

Cdf compute_cdf(std::vector<float> values, int points = 64);

// Evaluate an empirical CDF at a single x by interpolation.
double cdf_at(const Cdf& cdf, float x);

// All effective weights (mask and quantisation applied) of the model's
// compressible parameters, flattened.
std::vector<float> gather_effective_weights(const nn::Sequential& model);

// Outputs of every layer when `batch` flows through the model (eval mode),
// flattened and concatenated — "all activations" in the paper's Fig. 6
// sense. The input itself is not included.
std::vector<float> gather_activations(const nn::Sequential& model,
                                      const tensor::Tensor& batch);

}  // namespace con::core
