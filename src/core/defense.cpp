#include "core/defense.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace con::core {

using tensor::Index;
using tensor::Tensor;

AdvTrainStats adversarial_train(nn::Sequential& model,
                                const data::Dataset& train,
                                const AdvTrainConfig& config) {
  if (train.size() == 0) {
    throw std::invalid_argument("adversarial_train: empty dataset");
  }
  if (config.adversarial_fraction < 0.0 ||
      config.adversarial_fraction > 1.0) {
    throw std::invalid_argument(
        "adversarial_train: adversarial_fraction must be in [0, 1]");
  }
  nn::Sgd optimizer(model.parameters(),
                    nn::SgdConfig{.learning_rate = config.train.base_lr,
                                  .momentum = config.train.momentum,
                                  .weight_decay = config.train.weight_decay});
  nn::StepLrSchedule schedule = nn::StepLrSchedule::paper_schedule(
      config.train.base_lr, config.train.epochs);
  util::Rng rng(config.train.shuffle_seed);

  const Index n = train.size();
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});

  AdvTrainStats stats;
  for (int epoch = 0; epoch < config.train.epochs; ++epoch) {
    if (config.train.use_paper_lr_schedule) {
      optimizer.set_learning_rate(schedule.lr_at_epoch(epoch));
    }
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    const auto bs = static_cast<std::size_t>(config.train.batch_size);
    for (std::size_t lo = 0; lo < order.size(); lo += bs) {
      const std::size_t hi = std::min(order.size(), lo + bs);
      std::vector<Index> dims = train.images.shape().dims();
      dims[0] = static_cast<Index>(hi - lo);
      Tensor batch{tensor::Shape{dims}};
      std::vector<int> labels;
      labels.reserve(hi - lo);
      for (std::size_t j = lo; j < hi; ++j) {
        tensor::set_batch(batch, static_cast<Index>(j - lo),
                          tensor::slice_batch(train.images, order[j]));
        labels.push_back(
            train.labels[static_cast<std::size_t>(order[j])]);
      }
      // Replace the leading fraction of the batch with adversarial
      // versions crafted against the CURRENT weights.
      const auto n_adv = static_cast<Index>(
          config.adversarial_fraction * static_cast<double>(hi - lo));
      if (n_adv > 0) {
        std::vector<Index> adv_dims = dims;
        adv_dims[0] = n_adv;
        Tensor sub{tensor::Shape{adv_dims}};
        std::vector<int> sub_labels(labels.begin(), labels.begin() + n_adv);
        for (Index j = 0; j < n_adv; ++j) {
          tensor::set_batch(sub, j, tensor::slice_batch(batch, j));
        }
        Tensor adv = attacks::run_attack(config.attack, model, sub,
                                         sub_labels, config.attack_params);
        for (Index j = 0; j < n_adv; ++j) {
          tensor::set_batch(batch, j, tensor::slice_batch(adv, j));
        }
      }
      model.zero_grad();
      Tensor logits = model.forward(batch, /*train=*/true);
      nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
      model.backward(loss.grad_logits);
      optimizer.step();
      ++stats.steps;
    }
  }
  stats.final_clean_accuracy =
      nn::evaluate_accuracy(model, train.images, train.labels);
  return stats;
}

RobustnessReport measure_robustness(const nn::Sequential& model,
                                    const data::Dataset& eval_set,
                                    attacks::AttackKind attack,
                                    const attacks::AttackParams& params) {
  RobustnessReport report;
  report.clean_accuracy =
      nn::evaluate_accuracy(model, eval_set.images, eval_set.labels);
  Tensor adv = attacks::run_attack_batched(attack, model, eval_set.images,
                                           eval_set.labels, params,
                                           eval_set.num_classes());
  report.adversarial_accuracy =
      nn::evaluate_accuracy(model, adv, eval_set.labels);
  const std::vector<int> clean_pred = nn::predict(model, eval_set.images);
  const std::vector<int> adv_pred = nn::predict(model, adv);
  std::size_t correct = 0, fooled = 0;
  for (std::size_t i = 0; i < eval_set.labels.size(); ++i) {
    if (clean_pred[i] != eval_set.labels[i]) continue;
    ++correct;
    if (adv_pred[i] != eval_set.labels[i]) ++fooled;
  }
  report.fooling_rate =
      correct == 0 ? 0.0
                   : static_cast<double>(fooled) / static_cast<double>(correct);
  return report;
}

}  // namespace con::core
