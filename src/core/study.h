// Study: the experiment workspace tying datasets, baseline training and
// the content-addressed artifact store together. Benches and examples
// construct a Study; trained baselines, compressed variants and
// adversarial batches are realised as store derivations (src/store/,
// core/artifacts.h), so anything already built — by this run, an earlier
// run, or another binary sharing the store — is loaded instead of
// recomputed, and a config change rebuilds exactly the artifacts whose
// input closure changed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "attacks/params.h"
#include "compress/finetune.h"
#include "data/dataset.h"
#include "nn/sequential.h"
#include "store/store.h"

namespace con::core {

struct StudyConfig {
  // "lenet5", "cifarnet", "lenet5-small", "cifarnet-small".
  std::string network = "lenet5-small";
  tensor::Index train_size = 2000;
  tensor::Index test_size = 500;
  // Subset of the test set used for attack generation (attacks are the
  // costly part: DeepFool does K backward passes per iteration per image).
  tensor::Index attack_size = 200;
  int baseline_epochs = 6;
  int batch_size = 32;
  compress::FineTuneConfig finetune{.epochs = 2, .batch_size = 32};
  std::uint64_t seed = 42;
  // Artifact store root (--store DIR on every bench/example). Empty
  // resolves to $CON_STORE_DIR, else <artifacts>/store.
  std::string store_dir;
  // When false the study runs storeless: everything recomputes, nothing
  // persists (property tests that must observe fresh training set this).
  bool use_store = true;
};

// A model together with the hash of the derivation that produced it — the
// handle downstream derivations (transfer cells) use as their input edge.
// `drv` is the zero hash when the model was built storeless.
struct ModelArtifact {
  nn::Sequential model;
  store::Hash drv;
};

class Study {
 public:
  explicit Study(StudyConfig config);

  const StudyConfig& config() const { return config_; }
  const data::Dataset& train_set() const { return split_.train; }
  const data::Dataset& test_set() const { return split_.test; }
  const data::Dataset& attack_set() const { return attack_set_; }

  // The trained dense float32 baseline. Realised through the store on
  // first access (training only on a store miss) and memoized in-process.
  nn::Sequential& baseline();

  // Clean test accuracy of the baseline.
  double baseline_accuracy();

  // Train a fresh baseline with a different initialisation seed (not
  // stored) — used by the §3.3 cross-initialisation experiment.
  nn::Sequential train_fresh_baseline(std::uint64_t init_seed);

  // The artifact store backing this study; nullptr when use_store=false.
  store::Store* store();

  // Content hash of the train/test splits (computed once, lazily). Part of
  // every derivation closure: regenerating the data regenerates the grid.
  const store::Hash& dataset_hash();

  // Hash of the baseline's derivation — the input edge every downstream
  // artifact hangs off. Realises the baseline if needed.
  const store::Hash& baseline_drv_hash();

  // Store-backed compressed variants. On a hit the checkpoint is loaded
  // (bit-identical to a recompute — tests/test_packed_cache_invalidation
  // pins the round-trip); on a miss the variant is built, fine-tuned and
  // inserted. Storeless studies always build.
  ModelArtifact pruned_variant(double density, bool one_shot = false);
  ModelArtifact quantized_variant(int bits, bool quantize_activations = true);
  ModelArtifact clustered_variant(int bits);

  // The scenario-2 batch: adversarial samples crafted against the baseline
  // over attack_set(). Shared by every member of a compression family, so
  // it is a first-class derivation rather than a per-sweep recompute.
  tensor::Tensor baseline_adversarial(attacks::AttackKind attack,
                                      const attacks::AttackParams& params);

 private:
  void train_model(nn::Sequential& model, std::uint64_t shuffle_seed);

  StudyConfig config_;
  data::TrainTestSplit split_;
  data::Dataset attack_set_;
  std::optional<store::Store> store_;
  std::optional<nn::Sequential> baseline_;
  std::optional<store::Hash> dataset_hash_;
  std::optional<store::Hash> baseline_drv_;
};

}  // namespace con::core
