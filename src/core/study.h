// Study: the experiment workspace tying datasets, baseline training and
// artifact caching together. Benches and examples construct a Study, which
// loads the trained baseline from artifacts/ when available and trains it
// (then saves) otherwise — training once per configuration keeps the whole
// bench suite tractable on a CPU host.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "compress/finetune.h"
#include "data/dataset.h"
#include "nn/sequential.h"

namespace con::core {

struct StudyConfig {
  // "lenet5", "cifarnet", "lenet5-small", "cifarnet-small".
  std::string network = "lenet5-small";
  tensor::Index train_size = 2000;
  tensor::Index test_size = 500;
  // Subset of the test set used for attack generation (attacks are the
  // costly part: DeepFool does K backward passes per iteration per image).
  tensor::Index attack_size = 200;
  int baseline_epochs = 6;
  int batch_size = 32;
  compress::FineTuneConfig finetune{.epochs = 2, .batch_size = 32};
  std::uint64_t seed = 42;
  bool use_cache = true;
};

class Study {
 public:
  explicit Study(StudyConfig config);

  const StudyConfig& config() const { return config_; }
  const data::Dataset& train_set() const { return split_.train; }
  const data::Dataset& test_set() const { return split_.test; }
  const data::Dataset& attack_set() const { return attack_set_; }

  // The trained dense float32 baseline. Trains on first access (or loads
  // the cached checkpoint) and memoizes.
  nn::Sequential& baseline();

  // Clean test accuracy of the baseline.
  double baseline_accuracy();

  // Train a fresh baseline with a different initialisation seed (not
  // cached) — used by the §3.3 cross-initialisation experiment.
  nn::Sequential train_fresh_baseline(std::uint64_t init_seed);

  // Checkpoint path for this configuration's baseline. The key encodes
  // every input that shapes the trained weights — network, seed, train AND
  // test split sizes, epochs, batch size — so two configs never alias the
  // same checkpoint. Public so run manifests can record the exact key.
  std::string cache_path() const;

 private:
  StudyConfig config_;
  data::TrainTestSplit split_;
  data::Dataset attack_set_;
  std::optional<nn::Sequential> baseline_;
};

}  // namespace con::core
