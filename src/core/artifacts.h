// Derivation builders for the study domain.
//
// Every artifact the experiment grid produces — trained baseline
// checkpoints, compressed variants, adversarial batches, transfer-matrix
// cells — is addressed in the content store by a derivation whose closure
// names all of its inputs. This header is the single place those closures
// are defined, so "what invalidates what" is auditable:
//
//   baseline      <- init-state hash (topology + init scheme + seed),
//                    dataset content hash, training config
//   variant       <- baseline drv, compression op + level, finetune config,
//                    dataset content hash
//   adversarial   <- source-model drv, attack + params, eval-subset size
//   transfer cell <- baseline drv, variant drv, attack + params,
//                    eval-subset size
//
// Changing one axis (a seed, a density, an epsilon) re-addresses exactly
// the derivations whose closure contains it: a new epsilon rebuilds every
// cell but no checkpoint; a new density rebuilds one variant and its
// row of cells; a new seed rebuilds everything. Dataset and initial-weight
// inputs enter as content hashes, so editing models::make_model or a synth
// generator invalidates checkpoints even though no config field changed —
// the aliasing bug the old string keys had.
#pragma once

#include <string>

#include "attacks/params.h"
#include "compress/fixed_point.h"
#include "core/study.h"
#include "core/transfer.h"
#include "store/derivation.h"

namespace con::core {

store::Hash dataset_content_hash(const data::TrainTestSplit& split);

store::Derivation baseline_derivation(const StudyConfig& config,
                                      const store::Hash& init_state,
                                      const store::Hash& dataset);

store::Derivation pruned_derivation(const StudyConfig& config,
                                    const store::Hash& baseline_drv,
                                    const store::Hash& dataset, double density,
                                    bool one_shot);

store::Derivation quantized_derivation(const StudyConfig& config,
                                       const store::Hash& baseline_drv,
                                       const store::Hash& dataset, int bits,
                                       bool quantize_activations);

store::Derivation clustered_derivation(const StudyConfig& config,
                                       const store::Hash& baseline_drv,
                                       int bits);

// Adversarial batch crafted against the model identified by `source_drv`
// over the first `attack_size` samples of the test split.
store::Derivation adversarial_derivation(const store::Hash& source_drv,
                                         const store::Hash& dataset,
                                         tensor::Index attack_size,
                                         attacks::AttackKind attack,
                                         const attacks::AttackParams& params,
                                         const std::string& name);

// One transfer-matrix cell: the four scenario accuracies for a
// (baseline, variant) pair under one attack.
store::Derivation transfer_cell_derivation(const store::Hash& baseline_drv,
                                           const store::Hash& variant_drv,
                                           const store::Hash& dataset,
                                           tensor::Index attack_size,
                                           attacks::AttackKind attack,
                                           const attacks::AttackParams& params,
                                           const std::string& name);

// One deployed-integer transfer cell: the four scenario accuracies with
// the compressed model executed on the int8 backend
// (core::evaluate_scenarios_integer). A distinct kind plus the weight /
// activation fixed-point formats as attributes keep integer cells at
// addresses that can never alias the fake-quant float cells above, and
// re-address every cell when either format axis moves; the kernel ISA
// attribute rides along exactly as for the float cells.
store::Derivation integer_cell_derivation(
    const store::Hash& baseline_drv, const store::Hash& variant_drv,
    const store::Hash& dataset, tensor::Index attack_size,
    attacks::AttackKind attack, const attacks::AttackParams& params,
    const std::string& name, const compress::FixedPointFormat& weight_format,
    const compress::FixedPointFormat& activation_format);

// Tiny binary payload for a stored cell (magic + version + four doubles);
// loading a stored cell is provably equivalent to recomputing it because
// doubles round-trip bit-exactly.
void save_scenario_point(const ScenarioPoint& p, const std::string& path);
ScenarioPoint load_scenario_point(const std::string& path);

}  // namespace con::core
