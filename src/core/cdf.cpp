#include "core/cdf.h"

#include <algorithm>
#include <stdexcept>

namespace con::core {

Cdf compute_cdf(std::vector<float> values, int points) {
  if (values.empty()) throw std::invalid_argument("compute_cdf: no data");
  if (points < 2) throw std::invalid_argument("compute_cdf: need >= 2 points");
  std::sort(values.begin(), values.end());
  const float lo = values.front();
  const float hi = values.back();
  Cdf cdf;
  cdf.xs.resize(static_cast<std::size_t>(points));
  cdf.ps.resize(static_cast<std::size_t>(points));
  const double n = static_cast<double>(values.size());
  for (int i = 0; i < points; ++i) {
    const float x =
        lo + (hi - lo) * static_cast<float>(i) / static_cast<float>(points - 1);
    // count of values <= x
    const auto it = std::upper_bound(values.begin(), values.end(), x);
    cdf.xs[static_cast<std::size_t>(i)] = x;
    cdf.ps[static_cast<std::size_t>(i)] =
        static_cast<double>(it - values.begin()) / n;
  }
  return cdf;
}

double cdf_at(const Cdf& cdf, float x) {
  if (cdf.xs.empty()) throw std::invalid_argument("cdf_at: empty cdf");
  if (x <= cdf.xs.front()) return cdf.ps.front();
  if (x >= cdf.xs.back()) return cdf.ps.back();
  const auto it = std::lower_bound(cdf.xs.begin(), cdf.xs.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - cdf.xs.begin());
  const float x0 = cdf.xs[i - 1], x1 = cdf.xs[i];
  const double p0 = cdf.ps[i - 1], p1 = cdf.ps[i];
  if (x1 == x0) return p1;
  return p0 + (p1 - p0) * (static_cast<double>(x) - x0) / (x1 - x0);
}

std::vector<float> gather_effective_weights(const nn::Sequential& model) {
  std::vector<float> weights;
  for (const nn::Parameter* p : model.parameters()) {
    if (!p->compressible) continue;
    tensor::Tensor gate;
    tensor::Tensor eff = p->effective(gate);
    weights.insert(weights.end(), eff.flat().begin(), eff.flat().end());
  }
  return weights;
}

std::vector<float> gather_activations(const nn::Sequential& model,
                                      const tensor::Tensor& batch) {
  std::vector<float> activations;
  nn::ForwardTape tape(/*accumulate_param_grads=*/false);
  tensor::Tensor h = batch;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    h = model.layer(i).forward(h, /*train=*/false, tape.slot(i));
    activations.insert(activations.end(), h.flat().begin(), h.flat().end());
  }
  return activations;
}

}  // namespace con::core
