#include "core/study.h"

#include <stdexcept>
#include <utility>

#include "attacks/attack.h"
#include "compress/clustering.h"
#include "core/artifacts.h"
#include "data/synth_digits.h"
#include "data/synth_objects.h"
#include "io/checkpoint.h"
#include "models/model_zoo.h"
#include "nn/trainer.h"
#include "obs/obs.h"
#include "util/logging.h"

namespace con::core {

namespace {

data::TrainTestSplit make_split(const StudyConfig& c) {
  if (c.network.rfind("lenet5", 0) == 0) {
    data::SynthDigitsConfig dc;
    dc.train_size = c.train_size;
    dc.test_size = c.test_size;
    dc.seed = c.seed;
    return data::make_synth_digits(dc);
  }
  if (c.network.rfind("cifarnet", 0) == 0) {
    data::SynthObjectsConfig oc;
    oc.train_size = c.train_size;
    oc.test_size = c.test_size;
    oc.seed = c.seed;
    return data::make_synth_objects(oc);
  }
  throw std::invalid_argument("Study: unknown network " + c.network);
}

}  // namespace

Study::Study(StudyConfig config)
    : config_(std::move(config)), split_(make_split(config_)) {
  if (config_.attack_size > config_.test_size) {
    throw std::invalid_argument("Study: attack_size exceeds test_size");
  }
  attack_set_ = split_.test.take(config_.attack_size);
  if (config_.use_store) {
    const std::string dir = config_.store_dir.empty()
                                ? store::default_store_dir(io::artifacts_dir())
                                : config_.store_dir;
    store_.emplace(dir);
  }
}

store::Store* Study::store() { return store_ ? &*store_ : nullptr; }

const store::Hash& Study::dataset_hash() {
  if (!dataset_hash_) dataset_hash_ = dataset_content_hash(split_);
  return *dataset_hash_;
}

void Study::train_model(nn::Sequential& model, std::uint64_t shuffle_seed) {
  util::log_info("training baseline %s (%d epochs, %lld samples)",
                 model.name().c_str(), config_.baseline_epochs,
                 static_cast<long long>(config_.train_size));
  obs::Span span(model.name(), "train_baseline");
  obs::ScopedPhase phase("train-baseline");
  nn::TrainConfig tc;
  tc.epochs = config_.baseline_epochs;
  tc.batch_size = config_.batch_size;
  tc.shuffle_seed = shuffle_seed;
  nn::train_classifier(model, split_.train.images, split_.train.labels, tc);
}

nn::Sequential& Study::baseline() {
  if (baseline_.has_value()) return *baseline_;
  nn::Sequential model = models::make_model(config_.network, config_.seed);
  if (!store_) {
    train_model(model, config_.seed ^ 0x5f5fULL);
    baseline_ = std::move(model);
    return *baseline_;
  }
  // The init-state hash is taken before training: it captures topology,
  // init scheme and seed, closing the derivation over models::make_model.
  const store::Derivation drv = baseline_derivation(
      config_, io::model_state_hash(model), dataset_hash());
  bool built = false;
  const std::string path = store_->realise(drv, [&](const std::string& tmp) {
    train_model(model, config_.seed ^ 0x5f5fULL);
    io::save_model(model, tmp);
    built = true;
  });
  if (!built) {
    util::log_info("loading stored baseline %s", path.c_str());
    io::load_model_into(model, path);
  }
  // Keep the current baseline's closure alive across GC; re-running with a
  // changed config re-points the root and strands the old closure.
  store_->add_root("baseline-" + config_.network, path);
  baseline_drv_ = drv.hash();
  baseline_ = std::move(model);
  return *baseline_;
}

const store::Hash& Study::baseline_drv_hash() {
  baseline();
  if (!baseline_drv_) {
    // Storeless studies have no derivation; the zero hash marks "unstored"
    // and keeps downstream ModelArtifact plumbing total.
    baseline_drv_ = store::Hash{};
  }
  return *baseline_drv_;
}

double Study::baseline_accuracy() {
  return nn::evaluate_accuracy(baseline(), split_.test.images,
                               split_.test.labels);
}

nn::Sequential Study::train_fresh_baseline(std::uint64_t init_seed) {
  nn::Sequential model = models::make_model(config_.network, init_seed);
  model.set_name(config_.network + "-init" + std::to_string(init_seed));
  nn::TrainConfig tc;
  tc.epochs = config_.baseline_epochs;
  tc.batch_size = config_.batch_size;
  tc.shuffle_seed = init_seed ^ 0x5f5fULL;
  nn::train_classifier(model, split_.train.images, split_.train.labels, tc);
  return model;
}

ModelArtifact Study::pruned_variant(double density, bool one_shot) {
  nn::Sequential& base = baseline();
  if (!store_) {
    return ModelArtifact{compress::make_pruned_model(base, split_.train,
                                                     density, config_.finetune,
                                                     one_shot),
                         store::Hash{}};
  }
  const store::Derivation drv = pruned_derivation(
      config_, *baseline_drv_, dataset_hash(), density, one_shot);
  std::optional<nn::Sequential> model;
  const std::string path = store_->realise(drv, [&](const std::string& tmp) {
    util::log_info("pruning %s to density %.3f", base.name().c_str(), density);
    model = compress::make_pruned_model(base, split_.train, density,
                                        config_.finetune, one_shot);
    io::save_model(*model, tmp);
  });
  if (!model) {
    // Store hit: rebuild the (identical) topology and load weights, masks
    // and transforms from the checkpoint.
    model = models::make_model(config_.network, config_.seed);
    io::load_model_into(*model, path);
  }
  return ModelArtifact{std::move(*model), drv.hash()};
}

ModelArtifact Study::quantized_variant(int bits, bool quantize_activations) {
  nn::Sequential& base = baseline();
  if (!store_) {
    return ModelArtifact{
        compress::make_quantized_model(base, split_.train, bits,
                                       config_.finetune, quantize_activations),
        store::Hash{}};
  }
  const store::Derivation drv = quantized_derivation(
      config_, *baseline_drv_, dataset_hash(), bits, quantize_activations);
  std::optional<nn::Sequential> model;
  const std::string path = store_->realise(drv, [&](const std::string& tmp) {
    util::log_info("quantising %s to %d bits", base.name().c_str(), bits);
    model = compress::make_quantized_model(base, split_.train, bits,
                                           config_.finetune,
                                           quantize_activations);
    io::save_model(*model, tmp);
  });
  if (!model) {
    // QuantActivation layers carry no parameters, so quantising a freshly
    // initialised model yields the checkpoint's exact parameter list; the
    // fixed-point weight transforms then load from the payload.
    compress::QuantizeOptions options{
        .format = compress::FixedPointFormat::paper_format(bits),
        .quantize_weights = true,
        .quantize_activations = quantize_activations,
    };
    model = compress::quantize_model(
        models::make_model(config_.network, config_.seed), options);
    io::load_model_into(*model, path);
  }
  return ModelArtifact{std::move(*model), drv.hash()};
}

ModelArtifact Study::clustered_variant(int bits) {
  nn::Sequential& base = baseline();
  if (!store_) {
    return ModelArtifact{compress::cluster_model(base, bits), store::Hash{}};
  }
  const store::Derivation drv =
      clustered_derivation(config_, *baseline_drv_, bits);
  std::optional<nn::Sequential> model;
  const std::string path = store_->realise(drv, [&](const std::string& tmp) {
    util::log_info("clustering %s to %d bits", base.name().c_str(), bits);
    model = compress::cluster_model(base, bits);
    io::save_model(*model, tmp);
  });
  if (!model) {
    model = models::make_model(config_.network, config_.seed);
    io::load_model_into(*model, path);
  }
  return ModelArtifact{std::move(*model), drv.hash()};
}

tensor::Tensor Study::baseline_adversarial(attacks::AttackKind attack,
                                           const attacks::AttackParams& params) {
  nn::Sequential& base = baseline();
  obs::ScopedPhase phase("baseline-adversarial");
  if (!store_) {
    return attacks::run_attack_batched(attack, base, attack_set_.images,
                                       attack_set_.labels, params,
                                       attack_set_.num_classes());
  }
  const store::Derivation drv =
      adversarial_derivation(*baseline_drv_, dataset_hash(),
                             config_.attack_size, attack, params,
                             config_.network);
  std::optional<tensor::Tensor> adv;
  const std::string path = store_->realise(drv, [&](const std::string& tmp) {
    obs::Span span(base.name(), "baseline_adversarial");
    adv = attacks::run_attack_batched(attack, base, attack_set_.images,
                                      attack_set_.labels, params,
                                      attack_set_.num_classes());
    io::save_tensor(*adv, tmp);
  });
  if (!adv) adv = io::load_tensor(path);
  return std::move(*adv);
}

}  // namespace con::core
