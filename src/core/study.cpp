#include "core/study.h"

#include <stdexcept>

#include "data/synth_digits.h"
#include "data/synth_objects.h"
#include "io/checkpoint.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "models/model_zoo.h"
#include "nn/trainer.h"
#include "util/logging.h"

namespace con::core {

namespace {

data::TrainTestSplit make_split(const StudyConfig& c) {
  if (c.network.rfind("lenet5", 0) == 0) {
    data::SynthDigitsConfig dc;
    dc.train_size = c.train_size;
    dc.test_size = c.test_size;
    dc.seed = c.seed;
    return data::make_synth_digits(dc);
  }
  if (c.network.rfind("cifarnet", 0) == 0) {
    data::SynthObjectsConfig oc;
    oc.train_size = c.train_size;
    oc.test_size = c.test_size;
    oc.seed = c.seed;
    return data::make_synth_objects(oc);
  }
  throw std::invalid_argument("Study: unknown network " + c.network);
}

}  // namespace

Study::Study(StudyConfig config)
    : config_(std::move(config)), split_(make_split(config_)) {
  if (config_.attack_size > config_.test_size) {
    throw std::invalid_argument("Study: attack_size exceeds test_size");
  }
  attack_set_ = split_.test.take(config_.attack_size);
}

std::string Study::cache_path() const {
  // The key names the full study configuration, not just the parameters
  // that happen to shape today's training path: batch_size changes the
  // optimisation schedule (its omission aliased distinct configs onto one
  // checkpoint), and test_size is included so a checkpoint is only reused
  // by runs evaluating against the same split sizes.
  return io::artifacts_dir() + "/" + config_.network + "_s" +
         std::to_string(config_.seed) + "_n" +
         std::to_string(config_.train_size) + "_t" +
         std::to_string(config_.test_size) + "_e" +
         std::to_string(config_.baseline_epochs) + "_b" +
         std::to_string(config_.batch_size) + ".ckpt";
}

nn::Sequential& Study::baseline() {
  if (baseline_.has_value()) return *baseline_;
  baseline_ = models::make_model(config_.network, config_.seed);
  const std::string path = cache_path();
  if (config_.use_cache && io::file_exists(path)) {
    util::log_info("loading cached baseline %s", path.c_str());
    static obs::Counter& hits = obs::counter("study.baseline_cache.hit");
    hits.add(1);
    io::load_model_into(*baseline_, path);
    return *baseline_;
  }
  util::log_info("training baseline %s (%d epochs, %lld samples)",
                 config_.network.c_str(), config_.baseline_epochs,
                 static_cast<long long>(config_.train_size));
  obs::Span span(config_.network, "train_baseline");
  static obs::Counter& misses = obs::counter("study.baseline_cache.miss");
  misses.add(1);
  nn::TrainConfig tc;
  tc.epochs = config_.baseline_epochs;
  tc.batch_size = config_.batch_size;
  tc.shuffle_seed = config_.seed ^ 0x5f5fULL;
  nn::train_classifier(*baseline_, split_.train.images, split_.train.labels,
                       tc);
  if (config_.use_cache) {
    io::save_model(*baseline_, path);
    util::log_info("saved baseline to %s", path.c_str());
  }
  return *baseline_;
}

double Study::baseline_accuracy() {
  return nn::evaluate_accuracy(baseline(), split_.test.images,
                               split_.test.labels);
}

nn::Sequential Study::train_fresh_baseline(std::uint64_t init_seed) {
  nn::Sequential model = models::make_model(config_.network, init_seed);
  model.set_name(config_.network + "-init" + std::to_string(init_seed));
  nn::TrainConfig tc;
  tc.epochs = config_.baseline_epochs;
  tc.batch_size = config_.batch_size;
  tc.shuffle_seed = init_seed ^ 0x5f5fULL;
  nn::train_classifier(model, split_.train.images, split_.train.labels, tc);
  return model;
}

}  // namespace con::core
