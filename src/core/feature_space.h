// Feature-space similarity between a baseline and its compressed variants.
//
// Section 4.1 of the paper hypothesises that "pruning largely preserves the
// feature space of a baseline CNN, so adversarial samples remain
// transferable", echoing Tramèr et al.: similar feature spaces mean
// transferable samples. This module quantifies that hypothesis with linear
// CKA (centered kernel alignment) between per-layer activations of two
// models on the same probe batch — high CKA at matching depths means the
// compressed model kept the representation, and per the paper's argument,
// should predict high transferability.
#pragma once

#include <string>
#include <vector>

#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace con::core {

// Linear CKA between two activation matrices X [n, p] and Y [n, q]
// (rows = probe samples). Returns a value in [0, 1]; 1 = identical
// representational geometry up to linear transforms.
double linear_cka(const tensor::Tensor& x, const tensor::Tensor& y);

// Activation matrix [n_samples, features] of the layer at `layer_index`
// when `batch` flows through `model` in eval mode.
tensor::Tensor layer_activation_matrix(const nn::Sequential& model,
                                       const tensor::Tensor& batch,
                                       std::size_t layer_index);

struct LayerSimilarity {
  std::size_t layer_index;
  std::string layer_name;
  double cka;
};

// CKA at every layer the two models share by name. Models must have the
// same architecture modulo inserted quantisation layers (layers are matched
// by name, not position).
std::vector<LayerSimilarity> feature_space_similarity(
    const nn::Sequential& reference, const nn::Sequential& other,
    const tensor::Tensor& batch);

// Mean CKA across matched layers — a scalar "how much of the feature space
// survived compression" number.
double mean_feature_similarity(const nn::Sequential& reference,
                               const nn::Sequential& other,
                               const tensor::Tensor& batch);

}  // namespace con::core
