#include "core/transfer.h"

#include <stdexcept>

#include "compress/integer_model.h"
#include "nn/trainer.h"

namespace con::core {

double adversarial_accuracy(const nn::Sequential& source, const nn::Sequential& target,
                            attacks::AttackKind attack,
                            const attacks::AttackParams& params,
                            const data::Dataset& eval_set) {
  if (eval_set.size() == 0) {
    throw std::invalid_argument("adversarial_accuracy: empty eval set");
  }
  tensor::Tensor adv = attacks::run_attack_batched(attack, source, eval_set.images,
                                           eval_set.labels, params,
                                           eval_set.num_classes());
  return nn::evaluate_accuracy(target, adv, eval_set.labels);
}

ScenarioPoint evaluate_scenarios(const nn::Sequential& baseline,
                                 const nn::Sequential& compressed,
                                 attacks::AttackKind attack,
                                 const attacks::AttackParams& params,
                                 const data::Dataset& eval_set) {
  tensor::Tensor adv_full = attacks::run_attack_batched(
      attack, baseline, eval_set.images, eval_set.labels, params,
      eval_set.num_classes());
  return evaluate_scenarios(baseline, compressed, attack, params, eval_set,
                            adv_full);
}

ScenarioPoint evaluate_scenarios(const nn::Sequential& baseline,
                                 const nn::Sequential& compressed,
                                 attacks::AttackKind attack,
                                 const attacks::AttackParams& params,
                                 const data::Dataset& eval_set,
                                 const tensor::Tensor& baseline_adv) {
  if (baseline_adv.shape() != eval_set.images.shape()) {
    throw std::invalid_argument(
        "evaluate_scenarios: baseline_adv shape mismatch");
  }
  ScenarioPoint p;
  p.base_accuracy =
      nn::evaluate_accuracy(compressed, eval_set.images, eval_set.labels);
  // Samples from the compressed model serve scenarios 1 and 3; one attack
  // generation covers both.
  tensor::Tensor adv_comp = attacks::run_attack_batched(
      attack, compressed, eval_set.images, eval_set.labels, params,
      eval_set.num_classes());
  p.comp_to_comp =
      nn::evaluate_accuracy(compressed, adv_comp, eval_set.labels);
  p.comp_to_full = nn::evaluate_accuracy(baseline, adv_comp, eval_set.labels);
  p.full_to_comp =
      nn::evaluate_accuracy(compressed, baseline_adv, eval_set.labels);
  return p;
}

ScenarioPoint evaluate_scenarios_integer(const nn::Sequential& baseline,
                                         nn::Sequential& compressed,
                                         attacks::AttackKind attack,
                                         const attacks::AttackParams& params,
                                         const data::Dataset& eval_set) {
  tensor::Tensor adv_full = attacks::run_attack_batched(
      attack, baseline, eval_set.images, eval_set.labels, params,
      eval_set.num_classes());
  return evaluate_scenarios_integer(baseline, compressed, attack, params,
                                    eval_set, adv_full);
}

ScenarioPoint evaluate_scenarios_integer(const nn::Sequential& baseline,
                                         nn::Sequential& compressed,
                                         attacks::AttackKind attack,
                                         const attacks::AttackParams& params,
                                         const data::Dataset& eval_set,
                                         const tensor::Tensor& baseline_adv) {
  if (baseline_adv.shape() != eval_set.images.shape()) {
    throw std::invalid_argument(
        "evaluate_scenarios_integer: baseline_adv shape mismatch");
  }
  ScenarioPoint p;
  p.base_accuracy = compress::integer_accuracy(compressed, eval_set.images,
                                               eval_set.labels);
  // Samples are crafted against the simulated fake-quant graph (the only
  // differentiable form) and measured against the deployed integer model.
  tensor::Tensor adv_comp = attacks::run_attack_batched(
      attack, compressed, eval_set.images, eval_set.labels, params,
      eval_set.num_classes());
  p.comp_to_comp =
      compress::integer_accuracy(compressed, adv_comp, eval_set.labels);
  p.comp_to_full = nn::evaluate_accuracy(baseline, adv_comp, eval_set.labels);
  p.full_to_comp =
      compress::integer_accuracy(compressed, baseline_adv, eval_set.labels);
  return p;
}

double transfer_rate(const nn::Sequential& source, const nn::Sequential& target,
                     attacks::AttackKind attack,
                     const attacks::AttackParams& params,
                     const data::Dataset& eval_set) {
  tensor::Tensor adv = attacks::run_attack_batched(attack, source, eval_set.images,
                                           eval_set.labels, params,
                                           eval_set.num_classes());
  const std::vector<int> src_clean =
      nn::predict(source, eval_set.images);
  const std::vector<int> src_adv = nn::predict(source, adv);
  const std::vector<int> tgt_clean =
      nn::predict(target, eval_set.images);
  const std::vector<int> tgt_adv = nn::predict(target, adv);

  // A sample counts toward the rate when both models classified it
  // correctly when clean and the attack fooled the source; it transfers
  // when it also fools the target.
  std::size_t fooled_source = 0;
  std::size_t transferred = 0;
  for (std::size_t i = 0; i < eval_set.labels.size(); ++i) {
    const int y = eval_set.labels[i];
    if (src_clean[i] != y || tgt_clean[i] != y) continue;
    if (src_adv[i] == y) continue;
    ++fooled_source;
    if (tgt_adv[i] != y) ++transferred;
  }
  if (fooled_source == 0) return 0.0;
  return static_cast<double>(transferred) /
         static_cast<double>(fooled_source);
}

}  // namespace con::core
