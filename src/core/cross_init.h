// Cross-initialisation transferability (§3.3): two models of the same
// architecture trained from different random initialisations; how many
// DeepFool samples crafted on one fool the other? The paper reports 7% for
// LeNet5 and 60% for CifarNet, motivating its choice of "least
// transferable" attacks as a lower bound.
#pragma once

#include "attacks/params.h"
#include "core/study.h"

namespace con::core {

struct CrossInitResult {
  double accuracy_a = 0.0;  // clean test accuracy, model A
  double accuracy_b = 0.0;  // clean test accuracy, model B
  double transfer_a_to_b = 0.0;  // fraction of A-fooling samples fooling B
  double transfer_b_to_a = 0.0;
};

CrossInitResult cross_init_transferability(Study& study,
                                           attacks::AttackKind attack,
                                           const attacks::AttackParams& params,
                                           std::uint64_t seed_a,
                                           std::uint64_t seed_b);

}  // namespace con::core
