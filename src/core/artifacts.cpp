#include "core/artifacts.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "tensor/kernels/dispatch.h"

namespace con::core {

namespace {

// Hash one tensor into an open digest: shape then raw float bytes, so two
// datasets agree iff they are element-wise identical.
void update_with_tensor(store::Sha256& h, const tensor::Tensor& t) {
  for (tensor::Index d : t.shape().dims()) {
    const std::int64_t dim = d;
    h.update(&dim, sizeof(dim));
  }
  h.update(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  h.update(";");
}

void update_with_labels(store::Sha256& h, const std::vector<int>& labels) {
  const std::uint64_t n = labels.size();
  h.update(&n, sizeof(n));
  h.update(labels.data(), labels.size() * sizeof(int));
  h.update(";");
}

void set_finetune_attrs(store::Derivation& d,
                        const compress::FineTuneConfig& ft) {
  d.set("ft.epochs", static_cast<std::int64_t>(ft.epochs));
  d.set("ft.batch_size", static_cast<std::int64_t>(ft.batch_size));
  d.set("ft.base_lr", static_cast<double>(ft.base_lr));
  d.set("ft.momentum", static_cast<double>(ft.momentum));
  d.set("ft.weight_decay", static_cast<double>(ft.weight_decay));
  d.set("ft.seed", static_cast<std::uint64_t>(ft.seed));
}

// Derivations computed with SIMD kernels carry the active ISA as an extra
// attribute: float-GEMM results under avx2/neon may differ from scalar
// within the documented bound (tensor/kernels/dispatch.h), so they must
// never alias scalar-computed artifacts. The attribute is OMITTED for
// scalar — every address minted before the kernel layer existed stays
// valid, and the default build keeps hitting its old cache entries.
void set_kernel_attr(store::Derivation& d) {
  const tensor::kernels::Isa isa = tensor::kernels::active_isa();
  if (isa != tensor::kernels::Isa::kScalar) {
    d.set("kernel", std::string(tensor::kernels::isa_name(isa)));
  }
}

void set_attack_attrs(store::Derivation& d, const store::Hash& dataset,
                      tensor::Index attack_size, attacks::AttackKind attack,
                      const attacks::AttackParams& params) {
  d.set("dataset", dataset);
  d.set("attack", attacks::attack_name(attack));
  d.set("epsilon", static_cast<double>(params.epsilon));
  d.set("iterations", static_cast<std::int64_t>(params.iterations));
  d.set("attack_size", static_cast<std::int64_t>(attack_size));
}

}  // namespace

store::Hash dataset_content_hash(const data::TrainTestSplit& split) {
  store::Sha256 h;
  h.update("dataset 1\n");
  update_with_tensor(h, split.train.images);
  update_with_labels(h, split.train.labels);
  update_with_tensor(h, split.test.images);
  update_with_labels(h, split.test.labels);
  return h.finish();
}

store::Derivation baseline_derivation(const StudyConfig& config,
                                      const store::Hash& init_state,
                                      const store::Hash& dataset) {
  store::Derivation d("train-baseline",
                      config.network + "-s" + std::to_string(config.seed));
  d.set("network", config.network);
  d.set("train_size", static_cast<std::int64_t>(config.train_size));
  d.set("epochs", static_cast<std::int64_t>(config.baseline_epochs));
  d.set("batch_size", static_cast<std::int64_t>(config.batch_size));
  d.set("seed", static_cast<std::uint64_t>(config.seed));
  d.set("shuffle_seed", static_cast<std::uint64_t>(config.seed ^ 0x5f5fULL));
  // Content hashes close over what config fields cannot: `init_state` is
  // the initialised (untrained) model, so topology or init-scheme edits in
  // models::make_model re-address the checkpoint; `dataset` does the same
  // for the synth generators.
  d.set("init_state", init_state);
  d.set("dataset", dataset);
  set_kernel_attr(d);
  return d;
}

store::Derivation pruned_derivation(const StudyConfig& config,
                                    const store::Hash& baseline_drv,
                                    const store::Hash& dataset, double density,
                                    bool one_shot) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "-d%.3f", density);
  store::Derivation d("prune-finetune", config.network + suffix);
  d.set("density", density);
  d.set("one_shot", one_shot);
  d.set("dataset", dataset);
  set_finetune_attrs(d, config.finetune);
  d.set("baseline", baseline_drv);
  d.add_input(baseline_drv);
  set_kernel_attr(d);
  return d;
}

store::Derivation quantized_derivation(const StudyConfig& config,
                                       const store::Hash& baseline_drv,
                                       const store::Hash& dataset, int bits,
                                       bool quantize_activations) {
  store::Derivation d("quantize-finetune",
                      config.network + "-q" + std::to_string(bits));
  d.set("bits", static_cast<std::int64_t>(bits));
  d.set("quantize_activations", quantize_activations);
  d.set("dataset", dataset);
  set_finetune_attrs(d, config.finetune);
  d.set("baseline", baseline_drv);
  d.add_input(baseline_drv);
  set_kernel_attr(d);
  return d;
}

store::Derivation clustered_derivation(const StudyConfig& config,
                                       const store::Hash& baseline_drv,
                                       int bits) {
  store::Derivation d("cluster", config.network + "-c" + std::to_string(bits));
  d.set("bits", static_cast<std::int64_t>(bits));
  d.set("baseline", baseline_drv);
  d.add_input(baseline_drv);
  set_kernel_attr(d);
  return d;
}

store::Derivation adversarial_derivation(const store::Hash& source_drv,
                                         const store::Hash& dataset,
                                         tensor::Index attack_size,
                                         attacks::AttackKind attack,
                                         const attacks::AttackParams& params,
                                         const std::string& name) {
  store::Derivation d("adversarial-batch",
                      name + "-" + attacks::attack_name(attack));
  set_attack_attrs(d, dataset, attack_size, attack, params);
  d.set("source", source_drv);
  d.add_input(source_drv);
  set_kernel_attr(d);
  return d;
}

store::Derivation transfer_cell_derivation(const store::Hash& baseline_drv,
                                           const store::Hash& variant_drv,
                                           const store::Hash& dataset,
                                           tensor::Index attack_size,
                                           attacks::AttackKind attack,
                                           const attacks::AttackParams& params,
                                           const std::string& name) {
  store::Derivation d("transfer-cell",
                      name + "-" + attacks::attack_name(attack));
  set_attack_attrs(d, dataset, attack_size, attack, params);
  // Inputs are serialized as a sorted set, which cannot distinguish the
  // two roles; the role-named attributes keep cell(A,B) and cell(B,A) at
  // distinct addresses while add_input provides the GC edges.
  d.set("baseline", baseline_drv);
  d.set("variant", variant_drv);
  d.add_input(baseline_drv);
  d.add_input(variant_drv);
  set_kernel_attr(d);
  return d;
}

store::Derivation integer_cell_derivation(
    const store::Hash& baseline_drv, const store::Hash& variant_drv,
    const store::Hash& dataset, tensor::Index attack_size,
    attacks::AttackKind attack, const attacks::AttackParams& params,
    const std::string& name, const compress::FixedPointFormat& weight_format,
    const compress::FixedPointFormat& activation_format) {
  store::Derivation d("transfer-cell-int8",
                      name + "-" + attacks::attack_name(attack));
  set_attack_attrs(d, dataset, attack_size, attack, params);
  d.set("baseline", baseline_drv);
  d.set("variant", variant_drv);
  d.add_input(baseline_drv);
  d.add_input(variant_drv);
  // The formats the backend lowers to are measurement axes of their own:
  // the same variant checkpoint produces different integer logits under a
  // different activation grid, so the cell address must move with them.
  d.set("int8.weight", weight_format.to_string());
  d.set("int8.act", activation_format.to_string());
  set_kernel_attr(d);
  return d;
}

namespace {
constexpr char kCellMagic[4] = {'C', 'O', 'N', 'C'};
constexpr std::uint32_t kCellVersion = 1;
}  // namespace

void save_scenario_point(const ScenarioPoint& p, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  f.write(kCellMagic, sizeof(kCellMagic));
  f.write(reinterpret_cast<const char*>(&kCellVersion), sizeof(kCellVersion));
  const double values[4] = {p.base_accuracy, p.comp_to_comp, p.full_to_comp,
                            p.comp_to_full};
  f.write(reinterpret_cast<const char*>(values), sizeof(values));
  if (!f) throw std::runtime_error("scenario point write failed for " + path);
}

ScenarioPoint load_scenario_point(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  char magic[4];
  std::uint32_t version = 0;
  double values[4];
  f.read(magic, sizeof(magic));
  f.read(reinterpret_cast<char*>(&version), sizeof(version));
  f.read(reinterpret_cast<char*>(values), sizeof(values));
  if (!f || std::memcmp(magic, kCellMagic, 4) != 0 ||
      version != kCellVersion) {
    throw std::runtime_error(path + " is not a scenario-point artifact");
  }
  return ScenarioPoint{.base_accuracy = values[0],
                       .comp_to_comp = values[1],
                       .full_to_comp = values[2],
                       .comp_to_full = values[3]};
}

}  // namespace con::core
