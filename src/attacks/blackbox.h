// Black-box attacks: the "practical black-box" substitute-model pipeline
// (Papernot et al. 2017, cited in §2.3) and NES score-based gradient
// estimation.
//
// The paper's Scenario 2/3 taxonomy assumes the attacker holds SOME model
// of the family; Papernot et al. showed the assumption can be dropped — an
// attacker with only label-query access trains a substitute via
// Jacobian-based dataset augmentation and transfers white-box attacks from
// it. This module supplies that machinery so the harness can ask: is a
// compressed deployment any safer against a *pure* black-box adversary?
#pragma once

#include <functional>
#include <vector>

#include "attacks/params.h"
#include "data/dataset.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace con::attacks {

using tensor::Tensor;

// The victim as the attacker sees it: label queries only.
class LabelOracle {
 public:
  virtual ~LabelOracle() = default;
  virtual std::vector<int> query(const Tensor& images) = 0;
  // Number of label queries issued so far (attack budget accounting).
  virtual std::size_t queries_used() const = 0;
};

// Oracle backed by a local model (for experiments; a real attacker would
// hit a remote API).
class ModelOracle : public LabelOracle {
 public:
  explicit ModelOracle(const nn::Sequential& victim) : victim_(&victim) {}
  std::vector<int> query(const Tensor& images) override;
  std::size_t queries_used() const override { return queries_; }

 private:
  const nn::Sequential* victim_;
  std::size_t queries_ = 0;
};

struct SubstituteConfig {
  // Builds the substitute architecture (the attacker guesses it; it need
  // not match the victim).
  std::function<nn::Sequential()> make_substitute;
  int augmentation_rounds = 3;  // Jacobian-based dataset augmentation
  float lambda = 0.1f;          // augmentation step size
  int epochs_per_round = 4;
  int batch_size = 32;
  float learning_rate = 0.01f;
  std::uint64_t seed = 0xb1ab;
};

struct SubstituteResult {
  nn::Sequential substitute;
  std::size_t oracle_queries = 0;
  tensor::Index final_train_size = 0;
  double agreement = 0.0;  // label agreement with the oracle on the seeds
};

// Papernot et al.'s substitute training: label a small seed set via the
// oracle, fit the substitute, then repeatedly augment the set along the
// substitute's Jacobian directions and re-label.
SubstituteResult train_substitute(LabelOracle& oracle, const Tensor& seeds,
                                  const SubstituteConfig& config);

// NES gradient estimation (score-based black-box): estimates ∇ₓ of the
// victim's loss from probability queries using antithetic Gaussian
// sampling, then takes FGSM steps along the estimate.
struct NesParams {
  float epsilon = 0.05f;   // per-step size and ball radius per iteration
  int iterations = 5;
  int samples = 30;        // antithetic pairs per gradient estimate
  float sigma = 0.01f;     // finite-difference smoothing radius
  std::uint64_t seed = 0xe5;
};

// `probability_oracle(images)` returns softmax outputs [N, K] (score
// access). Returns adversarial images.
Tensor nes_attack(const std::function<Tensor(const Tensor&)>& probability_oracle,
                  const Tensor& images, const std::vector<int>& labels,
                  const NesParams& params);

}  // namespace con::attacks
