// Unified attack dispatch — the entry point used by the transfer-study
// harness and the benches.
#pragma once

#include "attacks/deepfool.h"
#include "attacks/fast_gradient.h"
#include "attacks/params.h"

namespace con::attacks {

// Generate adversarial samples for `images` against `model` (white-box:
// gradients are taken from `model` itself).
Tensor run_attack(AttackKind kind, nn::Sequential& model, const Tensor& images,
                  const std::vector<int>& labels, const AttackParams& params,
                  int num_classes = 10);

// Perturbation statistics, used to sanity-check attack strength the way the
// paper does ("perturbations of a sensible l2 and l0").
struct PerturbationStats {
  double mean_l2 = 0.0;
  double mean_linf = 0.0;
  double mean_l0_fraction = 0.0;  // fraction of changed pixels
};

PerturbationStats perturbation_stats(const Tensor& clean,
                                     const Tensor& adversarial);

}  // namespace con::attacks
