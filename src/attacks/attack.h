// Unified attack dispatch — the entry point used by the transfer-study
// harness and the benches.
#pragma once

#include "attacks/deepfool.h"
#include "attacks/fast_gradient.h"
#include "attacks/params.h"

namespace con::attacks {

// Generate adversarial samples for `images` against `model` (white-box:
// gradients are taken from `model` itself). The whole batch is attacked as
// one unit; gradients are rescaled so the result matches per-sample attacks.
Tensor run_attack(AttackKind kind, const nn::Sequential& model,
                  const Tensor& images, const std::vector<int>& labels,
                  const AttackParams& params, int num_classes = 10);

// Chunk size used by run_attack_batched. A power of two, so the batch-mean
// gradient rescale (g / N) * N is float-exact and chunked results are
// bit-identical to attacking each chunk alone.
inline constexpr tensor::Index kAttackChunk = 32;

// Like run_attack, but splits the batch into fixed chunks of kAttackChunk
// samples and generates them in parallel over the global thread pool.
// Chunks are dispatched through the attacks' *_range entry points: each
// chunk reads its rows of `images` and writes its rows of the result
// directly, with no intermediate chunk tensors or copies. The chunk
// boundaries depend only on the batch size — never on the thread count —
// and every chunk writes into its own slice of the result, so the output
// is identical for any --threads value (including 1).
Tensor run_attack_batched(AttackKind kind, const nn::Sequential& model,
                          const Tensor& images, const std::vector<int>& labels,
                          const AttackParams& params, int num_classes = 10);

// Perturbation statistics, used to sanity-check attack strength the way the
// paper does ("perturbations of a sensible l2 and l0").
struct PerturbationStats {
  double mean_l2 = 0.0;
  double mean_linf = 0.0;
  double mean_l0_fraction = 0.0;  // fraction of changed pixels
};

PerturbationStats perturbation_stats(const Tensor& clean,
                                     const Tensor& adversarial);

}  // namespace con::attacks
