#include "attacks/fast_gradient.h"

#include <algorithm>
#include <stdexcept>

#include "attacks/gradient.h"
#include "obs/metrics.h"
#include "tensor/ops.h"

namespace con::attacks {

using tensor::Index;

namespace {

void check_inputs(const Tensor& images, const std::vector<int>& labels,
                  const AttackParams& params) {
  if (images.rank() < 2) {
    throw std::invalid_argument("attack: images must be batched");
  }
  if (static_cast<std::size_t>(images.dim(0)) != labels.size()) {
    throw std::invalid_argument("attack: image/label count mismatch");
  }
  if (params.epsilon <= 0.0f || params.iterations <= 0) {
    throw std::invalid_argument("attack: epsilon and iterations must be > 0");
  }
}

Tensor run_full_batch(const nn::Sequential& model, const Tensor& images,
                      const std::vector<int>& labels,
                      const AttackParams& params, FastGradientRule rule) {
  check_inputs(images, labels, params);
  Tensor adv(images.shape());
  fast_gradient_range(model, images, 0, images.dim(0), labels, params, rule,
                      adv);
  return adv;
}

}  // namespace

void fast_gradient_range(const nn::Sequential& model, const Tensor& images,
                         Index lo, Index hi, const std::vector<int>& labels,
                         const AttackParams& params, FastGradientRule rule,
                         Tensor& out_adversarial) {
  check_inputs(images, labels, params);
  if (lo < 0 || hi > images.dim(0) || lo > hi) {
    throw std::out_of_range("fast_gradient_range: bad row range");
  }
  if (out_adversarial.shape() != images.shape()) {
    throw std::invalid_argument("fast_gradient_range: output shape mismatch");
  }
  if (lo == hi) return;
  const Index per_sample = images.numel() / images.dim(0);

  // Working iterate for the chunk. This is the only batch-sized buffer the
  // loop owns; every iteration updates it in place.
  Tensor adv = tensor::copy_rows(images, lo, hi);
  const std::vector<int> chunk_labels(
      labels.begin() + static_cast<std::ptrdiff_t>(lo),
      labels.begin() + static_cast<std::ptrdiff_t>(hi));

  // The batch loss is a mean; rescale by the chunk size so each sample sees
  // the gradient of its own (un-averaged) loss, making batched attacks
  // identical to per-sample attacks.
  const float batch_scale = static_cast<float>(adv.dim(0));
  nn::ForwardTape tape(/*accumulate_param_grads=*/false);
  Tensor grad;
  const Index n = adv.numel();
  const float eps = params.epsilon;
  static obs::Counter& steps = obs::counter("attack.fast_gradient.steps");
  static obs::Histogram& step_hist =
      obs::histogram("attack.fast_gradient.step_ns");
  // conlint:hotpath begin
  for (int it = 0; it < params.iterations; ++it) {
    obs::ScopedTimer step_timer(step_hist);
    steps.add(1);
    // conlint:allow(hot-path-alloc): the autograd API returns a fresh gradient tensor per step by contract; measured flat against the GEMM cost
    grad = loss_input_gradient(model, adv, chunk_labels, tape);
    tensor::scale_inplace(grad, batch_scale);
    const float* g = grad.data();
    const float* prev = adv.data();
    // The last iteration writes through to the caller's rows; earlier ones
    // update the iterate in place (prev[i] is read before x[i] is written,
    // so full aliasing is fine).
    float* x = (it + 1 == params.iterations)
                   ? out_adversarial.data() + lo * per_sample
                   : adv.data();
    for (Index i = 0; i < n; ++i) {
      const float step =
          rule == FastGradientRule::kSign
              ? eps * (g[i] > 0.0f ? 1.0f : (g[i] < 0.0f ? -1.0f : 0.0f))
              : eps * g[i];
      float v = prev[i] + step;
      // Clip to the ε-ball around the previous iterate (Algorithm 1), then
      // to the valid pixel domain.
      v = std::min(prev[i] + eps, std::max(prev[i] - eps, v));
      v = std::min(1.0f, std::max(0.0f, v));
      x[i] = v;
    }
  }
  // conlint:hotpath end
}

Tensor fgm(const nn::Sequential& model, const Tensor& images,
           const std::vector<int>& labels, const AttackParams& params) {
  AttackParams single = params;
  single.iterations = 1;
  return run_full_batch(model, images, labels, single,
                        FastGradientRule::kGradient);
}

Tensor fgsm(const nn::Sequential& model, const Tensor& images,
            const std::vector<int>& labels, const AttackParams& params) {
  AttackParams single = params;
  single.iterations = 1;
  return run_full_batch(model, images, labels, single, FastGradientRule::kSign);
}

Tensor ifgsm(const nn::Sequential& model, const Tensor& images,
             const std::vector<int>& labels, const AttackParams& params) {
  return run_full_batch(model, images, labels, params, FastGradientRule::kSign);
}

Tensor ifgm(const nn::Sequential& model, const Tensor& images,
            const std::vector<int>& labels, const AttackParams& params) {
  return run_full_batch(model, images, labels, params,
                        FastGradientRule::kGradient);
}

}  // namespace con::attacks
