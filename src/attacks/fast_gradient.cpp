#include "attacks/fast_gradient.h"

#include <algorithm>
#include <stdexcept>

#include "attacks/gradient.h"
#include "tensor/ops.h"

namespace con::attacks {

using tensor::Index;

namespace {

void check_inputs(const Tensor& images, const std::vector<int>& labels,
                  const AttackParams& params) {
  if (images.rank() < 2) {
    throw std::invalid_argument("attack: images must be batched");
  }
  if (static_cast<std::size_t>(images.dim(0)) != labels.size()) {
    throw std::invalid_argument("attack: image/label count mismatch");
  }
  if (params.epsilon <= 0.0f || params.iterations <= 0) {
    throw std::invalid_argument("attack: epsilon and iterations must be > 0");
  }
}

// The batch loss is a mean; rescale by N so each sample sees the gradient
// of its own (un-averaged) loss, making batched attacks identical to
// per-sample attacks.
Tensor per_sample_loss_gradient(const nn::Sequential& model, const Tensor& batch,
                                const std::vector<int>& labels) {
  Tensor g = loss_input_gradient(model, batch, labels);
  tensor::scale_inplace(g, static_cast<float>(batch.dim(0)));
  return g;
}

enum class StepRule { kGradient, kSign };

Tensor iterate_fast_gradient(const nn::Sequential& model, const Tensor& images,
                             const std::vector<int>& labels,
                             const AttackParams& params, StepRule rule) {
  check_inputs(images, labels, params);
  Tensor adv = images;
  const Index n = adv.numel();
  for (int it = 0; it < params.iterations; ++it) {
    Tensor grad = per_sample_loss_gradient(model, adv, labels);
    const float* g = grad.data();
    const float* prev = adv.data();
    Tensor next = adv;
    float* x = next.data();
    const float eps = params.epsilon;
    for (Index i = 0; i < n; ++i) {
      const float step =
          rule == StepRule::kSign
              ? eps * (g[i] > 0.0f ? 1.0f : (g[i] < 0.0f ? -1.0f : 0.0f))
              : eps * g[i];
      float v = prev[i] + step;
      // Clip to the ε-ball around the previous iterate (Algorithm 1), then
      // to the valid pixel domain.
      v = std::min(prev[i] + eps, std::max(prev[i] - eps, v));
      v = std::min(1.0f, std::max(0.0f, v));
      x[i] = v;
    }
    adv = std::move(next);
  }
  return adv;
}

}  // namespace

Tensor fgm(const nn::Sequential& model, const Tensor& images,
           const std::vector<int>& labels, const AttackParams& params) {
  AttackParams single = params;
  single.iterations = 1;
  return iterate_fast_gradient(model, images, labels, single,
                               StepRule::kGradient);
}

Tensor fgsm(const nn::Sequential& model, const Tensor& images,
            const std::vector<int>& labels, const AttackParams& params) {
  AttackParams single = params;
  single.iterations = 1;
  return iterate_fast_gradient(model, images, labels, single, StepRule::kSign);
}

Tensor ifgsm(const nn::Sequential& model, const Tensor& images,
             const std::vector<int>& labels, const AttackParams& params) {
  return iterate_fast_gradient(model, images, labels, params, StepRule::kSign);
}

Tensor ifgm(const nn::Sequential& model, const Tensor& images,
            const std::vector<int>& labels, const AttackParams& params) {
  return iterate_fast_gradient(model, images, labels, params,
                               StepRule::kGradient);
}

}  // namespace con::attacks
