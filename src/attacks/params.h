// Attack identifiers and the paper's Table 1 hyper-parameters.
#pragma once

#include <string>

namespace con::attacks {

enum class AttackKind { kFgm, kFgsm, kIfgm, kIfgsm, kDeepFool };

std::string attack_name(AttackKind kind);
AttackKind attack_from_name(const std::string& name);

struct AttackParams {
  // FGM/FGSM/IFGM/IFGSM: per-iteration step size and L∞ clip radius around
  // the previous iterate (Algorithm 1). DeepFool: overshoot factor.
  float epsilon = 0.02f;
  int iterations = 1;
};

// Table 1 of the paper:
//   Network/Attack   I-FGSM        I-FGM        DeepFool
//                     ε     i       ε     i      ε     i
//   LeNet5           0.02   12     10.0   5     0.01   5
//   CifarNet         0.02   12     0.02   12    0.01   3
// Single-step FGM/FGSM reuse the iterative ε with iterations = 1.
AttackParams paper_params(AttackKind kind, const std::string& network);

}  // namespace con::attacks
