#include "attacks/deepfool.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "attacks/gradient.h"
#include "obs/metrics.h"
#include "tensor/ops.h"

namespace con::attacks {

using tensor::Index;

namespace {

void check_inputs(const Tensor& images, const std::vector<int>& labels,
                  const AttackParams& params) {
  if (images.rank() < 2) {
    throw std::invalid_argument("deepfool: images must be batched");
  }
  if (static_cast<std::size_t>(images.dim(0)) != labels.size()) {
    throw std::invalid_argument("deepfool: image/label count mismatch");
  }
  if (params.iterations <= 0) {
    throw std::invalid_argument("deepfool: iterations must be > 0");
  }
}

// One forward + per-class backward: returns logits and the gradient of
// every logit w.r.t. the input. Exploits the fact that Layer::backward only
// reads the tape written by forward, so a single forward supports K
// backward passes against the same tape.
struct Linearisation {
  std::vector<float> logits;
  std::vector<Tensor> grads;  // grads[k] = ∇ₓ f_k
};

Linearisation linearise(const nn::Sequential& model, nn::ForwardTape& tape,
                        const Tensor& sample_batch, int num_classes) {
  Linearisation lin;
  Tensor logits = model.forward(sample_batch, /*train=*/false, tape);
  if (logits.dim(1) != num_classes) {
    throw std::invalid_argument("deepfool: class count mismatch");
  }
  lin.logits.resize(static_cast<std::size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    lin.logits[static_cast<std::size_t>(k)] = logits.at({0, k});
  }
  lin.grads.reserve(static_cast<std::size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    Tensor seed(logits.shape());
    seed.at({0, k}) = 1.0f;
    lin.grads.push_back(model.backward(seed, tape));
  }
  return lin;
}

}  // namespace

void deepfool_range(const nn::Sequential& model, const Tensor& images,
                    Index lo, Index hi, const std::vector<int>& labels,
                    const AttackParams& params, int num_classes,
                    Tensor& out_adversarial, int* iterations_used,
                    float* perturbation_l2) {
  check_inputs(images, labels, params);
  if (lo < 0 || hi > images.dim(0) || lo > hi) {
    throw std::out_of_range("deepfool_range: bad row range");
  }
  if (out_adversarial.shape() != images.shape()) {
    throw std::invalid_argument("deepfool_range: output shape mismatch");
  }
  const Index per_sample = images.numel() / images.dim(0);
  const float overshoot = params.epsilon;

  // Live batch state: x0/r row j belongs to original batch row rows[j].
  // Compaction shrinks all three together; storage is retained throughout
  // (shrink_rows never reallocates), so after the first iteration the loop
  // allocates only what forward/backward themselves produce.
  Tensor x0 = tensor::copy_rows(images, lo, hi);
  Tensor r(x0.shape());
  std::vector<Index> rows(static_cast<std::size_t>(hi - lo));
  for (std::size_t j = 0; j < rows.size(); ++j) {
    rows[j] = lo + static_cast<Index>(j);
  }

  // Finalise live row j after `iters` boundary steps: apply the overshoot,
  // clamp to the pixel domain and write through to the caller's rows. The
  // element sequence mirrors the reference epilogue (add_scaled, clamp,
  // l2_norm∘sub) exactly.
  auto finalise = [&](std::size_t j, int iters) {
    const Index row = rows[j];
    const float* x0p = x0.data() + static_cast<Index>(j) * per_sample;
    const float* rp = r.data() + static_cast<Index>(j) * per_sample;
    float* out = out_adversarial.data() + row * per_sample;
    double acc = 0.0;
    for (Index i = 0; i < per_sample; ++i) {
      float v = x0p[i] + (1.0f + overshoot) * rp[i];
      v = std::min(1.0f, std::max(0.0f, v));
      out[i] = v;
      const float d = v - x0p[i];
      acc += static_cast<double>(d) * d;
    }
    if (iterations_used) iterations_used[row] = iters;
    if (perturbation_l2) {
      perturbation_l2[row] = static_cast<float>(std::sqrt(acc));
    }
  };

  // Compact x0/r/rows down to the rows listed in keep (strictly ascending
  // positions into the current live set).
  auto compact_live = [&](const std::vector<Index>& keep) {
    tensor::compact_rows_inplace(x0, keep);
    tensor::compact_rows_inplace(r, keep);
    for (std::size_t j = 0; j < keep.size(); ++j) {
      rows[j] = rows[static_cast<std::size_t>(keep[j])];
    }
    rows.resize(keep.size());
  };

  nn::ForwardTape tape(/*accumulate_param_grads=*/false);
  Tensor xi;    // current iterate, storage reused across iterations
  Tensor seed;  // [B, K] backward seed, reused across classes/iterations
  std::vector<Tensor> grads(static_cast<std::size_t>(num_classes));
  std::vector<Index> keep;  // survivor positions in the forward batch
  std::vector<Index> keep2;

  static obs::Counter& iters = obs::counter("attack.deepfool.iterations");
  static obs::Distribution& active =
      obs::dist("attack.deepfool.active_rows");
  // Same observations as the distribution, but bucketed: the histogram's
  // exact integer counts make the active-set decay curve comparable across
  // --threads settings, where per-thread min/max interleavings are not.
  static obs::Histogram& active_hist =
      obs::histogram("attack.deepfool.active_rows");
  int it = 0;
  // conlint:hotpath begin
  while (!rows.empty() && it < params.iterations) {
    iters.add(1);
    active.record(static_cast<double>(rows.size()));
    active_hist.record(static_cast<std::uint64_t>(rows.size()));
    // x_i = x0 + (1 + η) r, clamped — the iterate carries the overshoot,
    // as in the reference implementation.
    tensor::add_scaled_into(xi, x0, r, 1.0f + overshoot);
    tensor::clamp_inplace(xi, 0.0f, 1.0f);
    // conlint:allow(hot-path-alloc): forward output is produced fresh by the model; its size shrinks with the active set
    Tensor logits = model.forward(xi, /*train=*/false, tape);
    if (logits.dim(1) != num_classes) {
      throw std::invalid_argument("deepfool: class count mismatch");
    }

    // Prediction check straight after the forward, BEFORE any backward:
    // rows that are already fooled never use their class gradients, so
    // (unlike the per-sample reference, which always runs a full
    // linearisation round and discards it on the break) the batched path
    // drops them here and spends the K backwards on survivors only.
    const Index fwd_rows = static_cast<Index>(rows.size());
    keep.clear();
    {
      const float* ld = logits.data();
      for (std::size_t j = 0; j < rows.size(); ++j) {
        const float* lrow = ld + static_cast<Index>(j) * num_classes;
        int pred = 0;
        for (int k = 1; k < num_classes; ++k) {
          if (lrow[k] > lrow[pred]) pred = k;
        }
        if (pred != labels[static_cast<std::size_t>(rows[j])]) {
          finalise(j, it);
        } else {
          // conlint:allow(hot-path-alloc): keep is cleared and reused; capacity is steady after the first iteration
          keep.push_back(static_cast<Index>(j));
        }
      }
    }
    if (keep.empty()) break;
    const Index dropped = fwd_rows - static_cast<Index>(keep.size());
    if (dropped > 0) compact_live(keep);

    // The tape still describes the pre-drop batch. When few rows dropped,
    // backward through the stale rows is cheaper than refreshing the tape;
    // when many dropped, one forward over the compacted batch is cheaper
    // than K backwards over dead rows. Break-even: a backward costs about
    // 0.6× a forward per row, so re-forward when dropped·K·0.6 exceeds the
    // survivor count. Either branch yields identical survivor gradients
    // (per-row GEMM contract), and the choice depends only on batch
    // composition — never on the thread count — so results are unchanged.
    bool refreshed = false;
    if (dropped > 0 &&
        3 * dropped * num_classes >= 5 * static_cast<Index>(keep.size())) {
      tensor::add_scaled_into(xi, x0, r, 1.0f + overshoot);
      tensor::clamp_inplace(xi, 0.0f, 1.0f);
      logits = model.forward(xi, /*train=*/false, tape);
      refreshed = true;
    }
    // Positions of live row j inside the forward batch / gradient rows.
    const bool compacted_fwd = refreshed || dropped == 0;
    const Index b = compacted_fwd ? static_cast<Index>(rows.size()) : fwd_rows;

    // K batched backwards against the one forward tape: one-hot column k
    // seeds ∇ₓf_k for every row at once. The seed tensor is reused: each
    // pass clears the previous column before setting its own.
    // conlint:allow(hot-path-alloc): resize only fires when the active set shrank; shrinking reuses capacity
    if (seed.shape() != logits.shape()) seed.resize(logits.shape());
    float* sd = seed.data();
    for (int k = 0; k < num_classes; ++k) {
      for (Index j = 0; j < b; ++j) {
        if (k > 0) sd[j * num_classes + (k - 1)] = 0.0f;
        sd[j * num_classes + k] = 1.0f;
      }
      grads[static_cast<std::size_t>(k)] = model.backward(seed, tape);
    }
    for (Index j = 0; j < b; ++j) {
      sd[j * num_classes + (num_classes - 1)] = 0.0f;
    }

    keep2.clear();
    const float* ld = logits.data();
    for (std::size_t j = 0; j < rows.size(); ++j) {
      // Row j of the live set sits at row `pos` of the forward batch (they
      // differ only when fooled rows were dropped without a re-forward).
      const Index pos =
          compacted_fwd ? static_cast<Index>(j)
                        : keep[j];
      const int y = labels[static_cast<std::size_t>(rows[j])];
      const float* lrow = ld + pos * num_classes;

      // Nearest linearised boundary among all wrong classes. Same scalar
      // sequence as the reference: float logit differences, double-
      // accumulated row norms, strict-< tie-break on ascending k.
      const float* gy =
          grads[static_cast<std::size_t>(y)].data() + pos * per_sample;
      float best_dist = std::numeric_limits<float>::infinity();
      float best_f = 0.0f;
      float best_wnorm2 = 0.0f;
      int best_k = -1;
      for (int k = 0; k < num_classes; ++k) {
        if (k == y) continue;
        const float* gk =
            grads[static_cast<std::size_t>(k)].data() + pos * per_sample;
        double acc = 0.0;
        for (Index i = 0; i < per_sample; ++i) {
          const float w = gk[i] - gy[i];
          acc += static_cast<double>(w) * w;
        }
        const float wnorm = static_cast<float>(std::sqrt(acc));
        if (wnorm < 1e-12f) continue;
        const float f_k = lrow[k] - lrow[y];
        const float dist = std::fabs(f_k) / wnorm;
        if (dist < best_dist) {
          best_dist = dist;
          best_f = f_k;
          best_wnorm2 = wnorm * wnorm;
          best_k = k;
        }
      }
      if (best_k < 0) {  // degenerate gradients; give up on this row
        finalise(j, it);
        continue;
      }

      // r_j += (|f| / ‖w‖²) · w, with a tiny floor so progress never
      // stalls. w is recomputed elementwise — float arithmetic is
      // deterministic, so this matches materialising it.
      const float coeff = (std::fabs(best_f) + 1e-4f) / best_wnorm2;
      const float* gk =
          grads[static_cast<std::size_t>(best_k)].data() + pos * per_sample;
      float* rp = r.data() + static_cast<Index>(j) * per_sample;
      for (Index i = 0; i < per_sample; ++i) {
        rp[i] += coeff * (gk[i] - gy[i]);
      }
      // conlint:allow(hot-path-alloc): keep2 is cleared and reused; capacity is steady after the first iteration
      keep2.push_back(static_cast<Index>(j));
    }
    ++it;

    if (keep2.size() != rows.size()) compact_live(keep2);
  }
  // conlint:hotpath end
  // Rows that survived every iteration exhaust the budget, exactly like the
  // reference loop falling out of its for.
  for (std::size_t j = 0; j < rows.size(); ++j) finalise(j, it);
}

DeepFoolResult deepfool(const nn::Sequential& model, const Tensor& images,
                        const std::vector<int>& labels,
                        const AttackParams& params, int num_classes) {
  check_inputs(images, labels, params);
  const Index n = images.dim(0);
  DeepFoolResult result;
  result.adversarial = Tensor(images.shape());
  result.iterations_used.resize(static_cast<std::size_t>(n), 0);
  result.perturbation_l2.resize(static_cast<std::size_t>(n), 0.0f);
  deepfool_range(model, images, 0, n, labels, params, num_classes,
                 result.adversarial, result.iterations_used.data(),
                 result.perturbation_l2.data());
  return result;
}

DeepFoolResult deepfool_reference(const nn::Sequential& model,
                                  const Tensor& images,
                                  const std::vector<int>& labels,
                                  const AttackParams& params,
                                  int num_classes) {
  check_inputs(images, labels, params);
  const Index n = images.dim(0);
  const float overshoot = params.epsilon;

  DeepFoolResult result;
  result.adversarial = images;
  result.iterations_used.resize(static_cast<std::size_t>(n), 0);
  result.perturbation_l2.resize(static_cast<std::size_t>(n), 0.0f);

  // One tape per sample loop: slots recycle their storage across iterates.
  nn::ForwardTape tape(/*accumulate_param_grads=*/false);
  for (Index s = 0; s < n; ++s) {
    const int y = labels[static_cast<std::size_t>(s)];
    Tensor sample = tensor::slice_batch(images, s);
    std::vector<Index> batch_dims = {1};
    for (Index d : sample.shape().dims()) batch_dims.push_back(d);
    const tensor::Shape batch_shape{std::move(batch_dims)};
    // Work in single-sample batch shape throughout: model gradients come
    // back batch-shaped.
    Tensor x0 = sample.reshaped(batch_shape);

    // Accumulated (un-overshot) perturbation r.
    Tensor r(x0.shape());
    int it = 0;
    for (; it < params.iterations; ++it) {
      // Current iterate carries the overshoot, as in the reference
      // implementation: x_i = x0 + (1 + η) r.
      Tensor xi = tensor::add_scaled(x0, r, 1.0f + overshoot);
      tensor::clamp_inplace(xi, 0.0f, 1.0f);
      Linearisation lin = linearise(model, tape, xi, num_classes);

      const int pred = static_cast<int>(
          tensor::argmax(Tensor({num_classes}, std::vector<float>(
                                                   lin.logits.begin(),
                                                   lin.logits.end()))));
      if (pred != y) break;  // already fooled

      // Nearest linearised boundary among all wrong classes.
      float best_dist = std::numeric_limits<float>::infinity();
      float best_f = 0.0f;
      float best_wnorm2 = 0.0f;
      Tensor best_w;
      const Tensor& grad_y = lin.grads[static_cast<std::size_t>(y)];
      for (int k = 0; k < num_classes; ++k) {
        if (k == y) continue;
        Tensor w_k = tensor::sub(lin.grads[static_cast<std::size_t>(k)], grad_y);
        const float f_k = lin.logits[static_cast<std::size_t>(k)] -
                          lin.logits[static_cast<std::size_t>(y)];
        const float wnorm = tensor::l2_norm(w_k);
        if (wnorm < 1e-12f) continue;
        const float dist = std::fabs(f_k) / wnorm;
        if (dist < best_dist) {
          best_dist = dist;
          best_f = f_k;
          best_wnorm2 = wnorm * wnorm;
          best_w = std::move(w_k);
        }
      }
      if (best_w.empty()) break;  // degenerate gradients; give up

      // r_i = (|f| / ‖w‖²) · w, with a tiny floor so progress never stalls.
      const float coeff = (std::fabs(best_f) + 1e-4f) / best_wnorm2;
      tensor::add_scaled_inplace(r, best_w, coeff);
    }

    Tensor adv = tensor::add_scaled(x0, r, 1.0f + overshoot);
    tensor::clamp_inplace(adv, 0.0f, 1.0f);
    result.iterations_used[static_cast<std::size_t>(s)] = it;
    result.perturbation_l2[static_cast<std::size_t>(s)] =
        tensor::l2_norm(tensor::sub(adv, x0));
    tensor::set_batch(result.adversarial, s, adv.reshaped(sample.shape()));
  }
  return result;
}

Tensor deepfool_images(const nn::Sequential& model, const Tensor& images,
                       const std::vector<int>& labels,
                       const AttackParams& params, int num_classes) {
  return deepfool(model, images, labels, params, num_classes).adversarial;
}

}  // namespace con::attacks
