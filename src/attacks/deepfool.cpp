#include "attacks/deepfool.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "attacks/gradient.h"
#include "tensor/ops.h"

namespace con::attacks {

using tensor::Index;

namespace {

// One forward + per-class backward: returns logits and the gradient of
// every logit w.r.t. the input. Exploits the fact that Layer::backward only
// reads the tape written by forward, so a single forward supports K
// backward passes against the same tape.
struct Linearisation {
  std::vector<float> logits;
  std::vector<Tensor> grads;  // grads[k] = ∇ₓ f_k
};

Linearisation linearise(const nn::Sequential& model, nn::ForwardTape& tape,
                        const Tensor& sample_batch, int num_classes) {
  Linearisation lin;
  Tensor logits = model.forward(sample_batch, /*train=*/false, tape);
  if (logits.dim(1) != num_classes) {
    throw std::invalid_argument("deepfool: class count mismatch");
  }
  lin.logits.resize(static_cast<std::size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    lin.logits[static_cast<std::size_t>(k)] = logits.at({0, k});
  }
  lin.grads.reserve(static_cast<std::size_t>(num_classes));
  for (int k = 0; k < num_classes; ++k) {
    Tensor seed(logits.shape());
    seed.at({0, k}) = 1.0f;
    lin.grads.push_back(model.backward(seed, tape));
  }
  return lin;
}

}  // namespace

DeepFoolResult deepfool(const nn::Sequential& model, const Tensor& images,
                        const std::vector<int>& labels,
                        const AttackParams& params, int num_classes) {
  if (images.rank() < 2) {
    throw std::invalid_argument("deepfool: images must be batched");
  }
  if (static_cast<std::size_t>(images.dim(0)) != labels.size()) {
    throw std::invalid_argument("deepfool: image/label count mismatch");
  }
  if (params.iterations <= 0) {
    throw std::invalid_argument("deepfool: iterations must be > 0");
  }
  const Index n = images.dim(0);
  const float overshoot = params.epsilon;

  DeepFoolResult result;
  result.adversarial = images;
  result.iterations_used.resize(static_cast<std::size_t>(n), 0);
  result.perturbation_l2.resize(static_cast<std::size_t>(n), 0.0f);

  // One tape per sample loop: slots recycle their storage across iterates.
  nn::ForwardTape tape(/*accumulate_param_grads=*/false);
  for (Index s = 0; s < n; ++s) {
    const int y = labels[static_cast<std::size_t>(s)];
    Tensor sample = tensor::slice_batch(images, s);
    std::vector<Index> batch_dims = {1};
    for (Index d : sample.shape().dims()) batch_dims.push_back(d);
    const tensor::Shape batch_shape{std::move(batch_dims)};
    // Work in single-sample batch shape throughout: model gradients come
    // back batch-shaped.
    Tensor x0 = sample.reshaped(batch_shape);

    // Accumulated (un-overshot) perturbation r.
    Tensor r(x0.shape());
    int it = 0;
    for (; it < params.iterations; ++it) {
      // Current iterate carries the overshoot, as in the reference
      // implementation: x_i = x0 + (1 + η) r.
      Tensor xi = tensor::add_scaled(x0, r, 1.0f + overshoot);
      tensor::clamp_inplace(xi, 0.0f, 1.0f);
      Linearisation lin = linearise(model, tape, xi, num_classes);

      const int pred = static_cast<int>(
          tensor::argmax(Tensor({num_classes}, std::vector<float>(
                                                   lin.logits.begin(),
                                                   lin.logits.end()))));
      if (pred != y) break;  // already fooled

      // Nearest linearised boundary among all wrong classes.
      float best_dist = std::numeric_limits<float>::infinity();
      float best_f = 0.0f;
      float best_wnorm2 = 0.0f;
      Tensor best_w;
      const Tensor& grad_y = lin.grads[static_cast<std::size_t>(y)];
      for (int k = 0; k < num_classes; ++k) {
        if (k == y) continue;
        Tensor w_k = tensor::sub(lin.grads[static_cast<std::size_t>(k)], grad_y);
        const float f_k = lin.logits[static_cast<std::size_t>(k)] -
                          lin.logits[static_cast<std::size_t>(y)];
        const float wnorm = tensor::l2_norm(w_k);
        if (wnorm < 1e-12f) continue;
        const float dist = std::fabs(f_k) / wnorm;
        if (dist < best_dist) {
          best_dist = dist;
          best_f = f_k;
          best_wnorm2 = wnorm * wnorm;
          best_w = std::move(w_k);
        }
      }
      if (best_w.empty()) break;  // degenerate gradients; give up

      // r_i = (|f| / ‖w‖²) · w, with a tiny floor so progress never stalls.
      const float coeff = (std::fabs(best_f) + 1e-4f) / best_wnorm2;
      tensor::add_scaled_inplace(r, best_w, coeff);
    }

    Tensor adv = tensor::add_scaled(x0, r, 1.0f + overshoot);
    tensor::clamp_inplace(adv, 0.0f, 1.0f);
    result.iterations_used[static_cast<std::size_t>(s)] = it;
    result.perturbation_l2[static_cast<std::size_t>(s)] =
        tensor::l2_norm(tensor::sub(adv, x0));
    tensor::set_batch(result.adversarial, s, adv.reshaped(sample.shape()));
  }
  return result;
}

Tensor deepfool_images(const nn::Sequential& model, const Tensor& images,
                       const std::vector<int>& labels,
                       const AttackParams& params, int num_classes) {
  return deepfool(model, images, labels, params, num_classes).adversarial;
}

}  // namespace con::attacks
