// Input-gradient computation shared by all white-box attacks.
//
// All helpers run eval-mode forwards with parameter-gradient accumulation
// disabled on the tape, so they are const over the model and safe to call
// concurrently from many threads on one shared model.
#pragma once

#include <vector>

#include "nn/sequential.h"
#include "nn/tape.h"
#include "tensor/tensor.h"

namespace con::attacks {

using tensor::Tensor;

// ∇ₓ J(θ, X, y) for a batch X [N,...] with true labels y: forward in eval
// mode, softmax-cross-entropy, backward to the input. Parameter gradients
// are never touched — attacks must not perturb training state.
Tensor loss_input_gradient(const nn::Sequential& model, const Tensor& batch,
                           const std::vector<int>& labels);

// Tape-reusing variant for iterative loops: the caller owns `tape` (built
// with accumulate_param_grads=false) and passes it every iteration, so the
// slot storage warmed by the first pass is recycled by every later one and
// the loop's steady state stops allocating per-layer state.
Tensor loss_input_gradient(const nn::Sequential& model, const Tensor& batch,
                           const std::vector<int>& labels,
                           nn::ForwardTape& tape);

// ∇ₓ f_k(X): gradient of logit k w.r.t. a single-sample batch [1,...].
// Used by DeepFool, which needs per-class decision-boundary geometry.
Tensor logit_input_gradient(const nn::Sequential& model,
                            const Tensor& sample_batch, int class_index,
                            int num_classes);

}  // namespace con::attacks
