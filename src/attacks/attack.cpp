#include "attacks/attack.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "tensor/ops.h"
#include "util/threadpool.h"

namespace con::attacks {

using tensor::Index;

namespace {

// Range dispatch: attack rows [lo, hi), writing the adversarial rows
// straight into `result`. No intermediate chunk tensors.
void run_attack_range(AttackKind kind, const nn::Sequential& model,
                      const Tensor& images, Index lo, Index hi,
                      const std::vector<int>& labels,
                      const AttackParams& params, int num_classes,
                      Tensor& result) {
  switch (kind) {
    case AttackKind::kFgm:
    case AttackKind::kFgsm: {
      AttackParams single = params;
      single.iterations = 1;
      fast_gradient_range(model, images, lo, hi, labels, single,
                          kind == AttackKind::kFgm
                              ? FastGradientRule::kGradient
                              : FastGradientRule::kSign,
                          result);
      return;
    }
    case AttackKind::kIfgm:
    case AttackKind::kIfgsm:
      fast_gradient_range(model, images, lo, hi, labels, params,
                          kind == AttackKind::kIfgm
                              ? FastGradientRule::kGradient
                              : FastGradientRule::kSign,
                          result);
      return;
    case AttackKind::kDeepFool:
      deepfool_range(model, images, lo, hi, labels, params, num_classes,
                     result, /*iterations_used=*/nullptr,
                     /*perturbation_l2=*/nullptr);
      return;
  }
  throw std::logic_error("unreachable attack kind");
}

}  // namespace

Tensor run_attack(AttackKind kind, const nn::Sequential& model,
                  const Tensor& images, const std::vector<int>& labels,
                  const AttackParams& params, int num_classes) {
  switch (kind) {
    case AttackKind::kFgm:
      return fgm(model, images, labels, params);
    case AttackKind::kFgsm:
      return fgsm(model, images, labels, params);
    case AttackKind::kIfgm:
      return ifgm(model, images, labels, params);
    case AttackKind::kIfgsm:
      return ifgsm(model, images, labels, params);
    case AttackKind::kDeepFool:
      return deepfool_images(model, images, labels, params, num_classes);
  }
  throw std::logic_error("unreachable attack kind");
}

Tensor run_attack_batched(AttackKind kind, const nn::Sequential& model,
                          const Tensor& images, const std::vector<int>& labels,
                          const AttackParams& params, int num_classes) {
  if (images.rank() < 2) {
    throw std::invalid_argument("run_attack_batched: images must be batched");
  }
  if (static_cast<std::size_t>(images.dim(0)) != labels.size()) {
    throw std::invalid_argument(
        "run_attack_batched: image/label count mismatch");
  }
  const Index n = images.dim(0);
  const std::size_t num_chunks =
      static_cast<std::size_t>((n + kAttackChunk - 1) / kAttackChunk);

  Tensor result(images.shape());
  obs::Span batch_span(attack_name(kind), "batched");
  static obs::Counter& chunks = obs::counter("attack.chunks");
  static obs::Distribution& chunk_time = obs::dist("attack.chunk_s");
  static obs::Histogram& chunk_hist = obs::histogram("attack.chunk_ns");
  util::parallel_for(0, num_chunks, [&](std::size_t c) {
    const Index lo = static_cast<Index>(c) * kAttackChunk;
    const Index hi = std::min(lo + kAttackChunk, n);
    obs::Span chunk_span(attack_name(kind), "chunk");
    obs::ScopedTimer chunk_timer(chunk_time, chunk_hist);
    chunks.add(1);
    // Each chunk reads its own rows of `images` and owns its own rows of
    // `result`; no cross-chunk writes, no chunk copies.
    run_attack_range(kind, model, images, lo, hi, labels, params, num_classes,
                     result);
  });
  return result;
}

PerturbationStats perturbation_stats(const Tensor& clean,
                                     const Tensor& adversarial) {
  if (clean.shape() != adversarial.shape()) {
    throw std::invalid_argument("perturbation_stats: shape mismatch");
  }
  if (clean.rank() < 1 || clean.dim(0) == 0) {
    throw std::invalid_argument("perturbation_stats: empty batch");
  }
  const Index n = clean.dim(0);
  const Index per_sample = clean.numel() / n;
  const float* c = clean.data();
  const float* a = adversarial.data();
  PerturbationStats stats;
  for (Index s = 0; s < n; ++s) {
    double l2 = 0.0, linf = 0.0;
    Index changed = 0;
    for (Index i = s * per_sample; i < (s + 1) * per_sample; ++i) {
      const double d = static_cast<double>(a[i]) - c[i];
      l2 += d * d;
      linf = std::max(linf, std::fabs(d));
      if (d != 0.0) ++changed;
    }
    stats.mean_l2 += std::sqrt(l2);
    stats.mean_linf += linf;
    stats.mean_l0_fraction +=
        static_cast<double>(changed) / static_cast<double>(per_sample);
  }
  stats.mean_l2 /= static_cast<double>(n);
  stats.mean_linf /= static_cast<double>(n);
  stats.mean_l0_fraction /= static_cast<double>(n);
  return stats;
}

}  // namespace con::attacks
