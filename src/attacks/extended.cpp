#include "attacks/extended.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "attacks/gradient.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace con::attacks {

using tensor::Index;

namespace {

void check_batch(const Tensor& images, const std::vector<int>& labels) {
  if (images.rank() < 2) {
    throw std::invalid_argument("attack: images must be batched");
  }
  if (static_cast<std::size_t>(images.dim(0)) != labels.size()) {
    throw std::invalid_argument("attack: image/label count mismatch");
  }
}

// The batch loss is a mean; rescale by N so each sample sees the gradient
// of its own (un-averaged) loss. The caller owns the tape so iterative
// loops recycle slot storage instead of allocating per iteration.
Tensor per_sample_loss_gradient(const nn::Sequential& model, const Tensor& batch,
                                const std::vector<int>& labels,
                                nn::ForwardTape& tape) {
  Tensor g = loss_input_gradient(model, batch, labels, tape);
  tensor::scale_inplace(g, static_cast<float>(batch.dim(0)));
  return g;
}

}  // namespace

Tensor pgd(const nn::Sequential& model, const Tensor& images,
           const std::vector<int>& labels, const PgdParams& params) {
  check_batch(images, labels);
  if (params.epsilon <= 0.0f || params.step_size <= 0.0f ||
      params.iterations <= 0) {
    throw std::invalid_argument("pgd: parameters must be positive");
  }
  const Index n = images.numel();
  Tensor adv = images;
  if (params.random_start) {
    // Each sample draws its random start from an independent stream seeded
    // by (params.seed, sample index), so the result is the same no matter
    // how the batch is split across chunks or threads.
    const Index batch = images.dim(0);
    const Index per_sample = n / batch;
    float* a = adv.data();
    for (Index s = 0; s < batch; ++s) {
      std::uint64_t mix = params.seed + static_cast<std::uint64_t>(s);
      util::Rng rng(util::splitmix64_next(mix));
      for (Index i = s * per_sample; i < (s + 1) * per_sample; ++i) {
        a[i] += rng.uniform_f(-params.epsilon, params.epsilon);
      }
    }
    tensor::clamp_inplace(adv, 0.0f, 1.0f);
  }
  const float* orig = images.data();
  nn::ForwardTape tape(/*accumulate_param_grads=*/false);
  // conlint:hotpath begin
  for (int it = 0; it < params.iterations; ++it) {
    // conlint:allow(hot-path-alloc): per-iteration gradient buffer is produced by the model's backward pass
    Tensor grad = per_sample_loss_gradient(model, adv, labels, tape);
    const float* g = grad.data();
    float* a = adv.data();
    for (Index i = 0; i < n; ++i) {
      const float step =
          params.step_size *
          (g[i] > 0.0f ? 1.0f : (g[i] < 0.0f ? -1.0f : 0.0f));
      float v = a[i] + step;
      // Project onto the ε-ball around the ORIGINAL image, then the pixel
      // domain — this is the Madry projection, not the paper's
      // previous-iterate clip.
      v = std::min(orig[i] + params.epsilon,
                   std::max(orig[i] - params.epsilon, v));
      a[i] = std::min(1.0f, std::max(0.0f, v));
    }
  }
  // conlint:hotpath end
  return adv;
}

Tensor mi_fgsm(const nn::Sequential& model, const Tensor& images,
               const std::vector<int>& labels, const MiFgsmParams& params) {
  check_batch(images, labels);
  if (params.epsilon <= 0.0f || params.iterations <= 0) {
    throw std::invalid_argument("mi_fgsm: parameters must be positive");
  }
  const Index total = images.numel();
  const Index batch = images.dim(0);
  const Index per_sample = total / batch;
  const float alpha =
      params.epsilon / static_cast<float>(params.iterations);
  Tensor adv = images;
  Tensor momentum(images.shape());
  const float* orig = images.data();
  nn::ForwardTape tape(/*accumulate_param_grads=*/false);
  // conlint:hotpath begin
  for (int it = 0; it < params.iterations; ++it) {
    // conlint:allow(hot-path-alloc): per-iteration gradient buffer is produced by the model's backward pass
    Tensor grad = per_sample_loss_gradient(model, adv, labels, tape);
    // Normalise each sample's gradient by its L1 norm before accumulation
    // (the MI-FGSM update rule).
    float* g = grad.data();
    for (Index s = 0; s < batch; ++s) {
      double l1 = 0.0;
      for (Index i = s * per_sample; i < (s + 1) * per_sample; ++i) {
        l1 += std::fabs(g[i]);
      }
      const float inv = l1 > 1e-12 ? static_cast<float>(1.0 / l1) : 0.0f;
      for (Index i = s * per_sample; i < (s + 1) * per_sample; ++i) {
        g[i] *= inv;
      }
    }
    float* m = momentum.data();
    float* a = adv.data();
    for (Index i = 0; i < total; ++i) {
      m[i] = params.decay * m[i] + g[i];
      const float step =
          alpha * (m[i] > 0.0f ? 1.0f : (m[i] < 0.0f ? -1.0f : 0.0f));
      float v = a[i] + step;
      v = std::min(orig[i] + params.epsilon,
                   std::max(orig[i] - params.epsilon, v));
      a[i] = std::min(1.0f, std::max(0.0f, v));
    }
  }
  // conlint:hotpath end
  return adv;
}

Tensor targeted_ifgsm(const nn::Sequential& model, const Tensor& images,
                      const std::vector<int>& target_labels,
                      const AttackParams& params) {
  check_batch(images, target_labels);
  if (params.epsilon <= 0.0f || params.iterations <= 0) {
    throw std::invalid_argument("targeted_ifgsm: parameters must be positive");
  }
  const Index n = images.numel();
  Tensor adv = images;
  nn::ForwardTape tape(/*accumulate_param_grads=*/false);
  // conlint:hotpath begin
  for (int it = 0; it < params.iterations; ++it) {
    // conlint:allow(hot-path-alloc): per-iteration gradient buffer is produced by the model's backward pass
    Tensor grad = per_sample_loss_gradient(model, adv, target_labels, tape);
    const float* g = grad.data();
    // In-place update: a[i] is read before it is written, so the ε-ball
    // clip around the previous iterate needs no copy of the batch.
    float* a = adv.data();
    for (Index i = 0; i < n; ++i) {
      // DESCEND the loss toward the target class: minus sign.
      const float step =
          -params.epsilon *
          (g[i] > 0.0f ? 1.0f : (g[i] < 0.0f ? -1.0f : 0.0f));
      float v = a[i] + step;
      v = std::min(a[i] + params.epsilon,
                   std::max(a[i] - params.epsilon, v));
      a[i] = std::min(1.0f, std::max(0.0f, v));
    }
  }
  // conlint:hotpath end
  return adv;
}

Tensor jsma(const nn::Sequential& model, const Tensor& images,
            const std::vector<int>& labels, const JsmaParams& params,
            int num_classes) {
  check_batch(images, labels);
  if (params.max_pixels <= 0) {
    throw std::invalid_argument("jsma: max_pixels must be positive");
  }
  const Index batch = images.dim(0);
  Tensor result = images;
  // Tape and backward seed hoisted out of both loops: one forward per
  // picked pixel serves the misclassification check and both class
  // gradients (two backwards against the same tape), instead of the three
  // forwards the per-gradient helpers would cost.
  nn::ForwardTape tape(/*accumulate_param_grads=*/false);
  Tensor seed;
  for (Index s = 0; s < batch; ++s) {
    Tensor sample = tensor::slice_batch(images, s);
    std::vector<Index> dims = {1};
    for (Index d : sample.shape().dims()) dims.push_back(d);
    Tensor x = sample.reshaped(tensor::Shape{dims});
    const int y = labels[static_cast<std::size_t>(s)];

    // Pick the target: requested class, or the runner-up logit.
    Tensor logits = model.forward(x, false, tape);
    if (logits.dim(1) != num_classes) {
      throw std::invalid_argument("jsma: class count mismatch");
    }
    int target = params.target_class;
    if (target < 0 || target == y) {
      float best = -1e30f;
      for (int k = 0; k < num_classes; ++k) {
        if (k == y) continue;
        if (logits.at({0, k}) > best) {
          best = logits.at({0, k});
          target = k;
        }
      }
    }

    std::vector<bool> used(static_cast<std::size_t>(x.numel()), false);
    // conlint:hotpath begin
    for (int picked = 0; picked < params.max_pixels; ++picked) {
      // The tape already holds the forward of the current x (from the
      // initial forward or the post-update check below).
      // conlint:allow(hot-path-alloc): resize fires once per sample (seed shape is fixed across pixels)
      if (seed.shape() != logits.shape()) seed.resize(logits.shape());
      seed.at({0, target}) = 1.0f;
      // conlint:allow(hot-path-alloc): per-iteration gradient buffer is produced by the model's backward pass
      Tensor grad_t = model.backward(seed, tape);
      seed.at({0, target}) = 0.0f;
      seed.at({0, y}) = 1.0f;
      // conlint:allow(hot-path-alloc): per-iteration gradient buffer is produced by the model's backward pass
      Tensor grad_y = model.backward(seed, tape);
      seed.at({0, y}) = 0.0f;
      // Saliency: pixels whose increase helps the target and hurts the
      // true class (and symmetrically for decrease).
      Index best_idx = -1;
      float best_score = 0.0f;
      float best_dir = 0.0f;
      const float* gt = grad_t.data();
      const float* gy = grad_y.data();
      const float* xv = x.data();
      for (Index i = 0; i < x.numel(); ++i) {
        if (used[static_cast<std::size_t>(i)]) continue;
        // increasing the pixel
        if (gt[i] > 0.0f && gy[i] < 0.0f && xv[i] < 1.0f) {
          const float score = gt[i] * (-gy[i]);
          if (score > best_score) {
            best_score = score;
            best_idx = i;
            best_dir = 1.0f;
          }
        }
        // decreasing the pixel
        if (gt[i] < 0.0f && gy[i] > 0.0f && xv[i] > 0.0f) {
          const float score = (-gt[i]) * gy[i];
          if (score > best_score) {
            best_score = score;
            best_idx = i;
            best_dir = -1.0f;
          }
        }
      }
      if (best_idx < 0) break;  // no useful pixel left
      used[static_cast<std::size_t>(best_idx)] = true;
      float& pixel = x[best_idx];
      pixel = std::min(1.0f, std::max(0.0f, pixel + best_dir * params.theta));

      logits = model.forward(x, false, tape);
      if (tensor::argmax_row(logits, 0) == target) break;
    }
    // conlint:hotpath end
    tensor::set_batch(result, s, x.reshaped(sample.shape()));
  }
  return result;
}

}  // namespace con::attacks
