#include "attacks/gradient.h"

#include <stdexcept>

#include "nn/loss.h"

namespace con::attacks {

Tensor loss_input_gradient(const nn::Sequential& model, const Tensor& batch,
                           const std::vector<int>& labels) {
  nn::ForwardTape tape(/*accumulate_param_grads=*/false);
  return loss_input_gradient(model, batch, labels, tape);
}

Tensor loss_input_gradient(const nn::Sequential& model, const Tensor& batch,
                           const std::vector<int>& labels,
                           nn::ForwardTape& tape) {
  Tensor logits = model.forward(batch, /*train=*/false, tape);
  nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
  return model.backward(loss.grad_logits, tape);
}

Tensor logit_input_gradient(const nn::Sequential& model,
                            const Tensor& sample_batch, int class_index,
                            int num_classes) {
  if (sample_batch.dim(0) != 1) {
    throw std::invalid_argument(
        "logit_input_gradient expects a single-sample batch");
  }
  nn::ForwardTape tape(/*accumulate_param_grads=*/false);
  Tensor logits = model.forward(sample_batch, /*train=*/false, tape);
  if (logits.dim(1) != num_classes) {
    throw std::invalid_argument("logit_input_gradient: class count mismatch");
  }
  if (class_index < 0 || class_index >= num_classes) {
    throw std::out_of_range("logit_input_gradient: class index out of range");
  }
  Tensor seed(logits.shape());
  seed.at({0, class_index}) = 1.0f;
  return model.backward(seed, tape);
}

}  // namespace con::attacks
