#include "attacks/gradient.h"

#include <stdexcept>

#include "nn/loss.h"

namespace con::attacks {

Tensor loss_input_gradient(nn::Sequential& model, const Tensor& batch,
                           const std::vector<int>& labels) {
  model.zero_grad();
  Tensor logits = model.forward(batch, /*train=*/false);
  nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
  Tensor grad_input = model.backward(loss.grad_logits);
  model.zero_grad();
  return grad_input;
}

Tensor logit_input_gradient(nn::Sequential& model, const Tensor& sample_batch,
                            int class_index, int num_classes) {
  if (sample_batch.dim(0) != 1) {
    throw std::invalid_argument(
        "logit_input_gradient expects a single-sample batch");
  }
  model.zero_grad();
  Tensor logits = model.forward(sample_batch, /*train=*/false);
  if (logits.dim(1) != num_classes) {
    throw std::invalid_argument("logit_input_gradient: class count mismatch");
  }
  if (class_index < 0 || class_index >= num_classes) {
    throw std::out_of_range("logit_input_gradient: class index out of range");
  }
  Tensor seed(logits.shape());
  seed.at({0, class_index}) = 1.0f;
  Tensor grad_input = model.backward(seed);
  model.zero_grad();
  return grad_input;
}

}  // namespace con::attacks
