// Extended attack suite beyond the paper's three evaluation attacks.
//
// The paper's related-work section surveys the wider attack literature;
// this module implements the natural neighbours so the transfer harness can
// probe them too:
//  - PGD: IFGSM with a random start inside the ε-ball and projection onto
//    the ball around the ORIGINAL image (Madry-style) — the de-facto
//    standard white-box attack.
//  - MI-FGSM: momentum-accumulated gradients, known to transfer better than
//    plain iterative FGSM (useful as an upper-bound probe where the
//    paper's attacks probe the lower bound).
//  - Targeted IFGSM: drive the sample toward a chosen class instead of away
//    from the true one.
//  - JSMA (Papernot et al. 2016b): greedy saliency-map attack that perturbs
//    the few most influential pixels — an L0-style attack.
#pragma once

#include <vector>

#include "attacks/params.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace con::attacks {

using tensor::Tensor;

struct PgdParams {
  float epsilon = 0.1f;       // radius of the L∞ ball around the original
  float step_size = 0.02f;    // per-iteration step
  int iterations = 12;
  bool random_start = true;
  std::uint64_t seed = 0x96d;
};

Tensor pgd(const nn::Sequential& model, const Tensor& images,
           const std::vector<int>& labels, const PgdParams& params);

struct MiFgsmParams {
  float epsilon = 0.1f;     // total L∞ budget
  int iterations = 10;
  float decay = 1.0f;       // momentum decay μ
};

Tensor mi_fgsm(const nn::Sequential& model, const Tensor& images,
               const std::vector<int>& labels, const MiFgsmParams& params);

// Targeted iterative FGSM: descends the loss toward `target_labels`.
Tensor targeted_ifgsm(const nn::Sequential& model, const Tensor& images,
                      const std::vector<int>& target_labels,
                      const AttackParams& params);

struct JsmaParams {
  float theta = 1.0f;        // per-pixel perturbation (sign decides +/-)
  int max_pixels = 40;       // L0 budget: pixels the attack may change
  int target_class = -1;     // -1: most-likely wrong class per sample
};

Tensor jsma(const nn::Sequential& model, const Tensor& images,
            const std::vector<int>& labels, const JsmaParams& params,
            int num_classes = 10);

}  // namespace con::attacks
