#include "attacks/blackbox.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "attacks/gradient.h"
#include "nn/loss.h"
#include "nn/trainer.h"
#include "tensor/ops.h"

namespace con::attacks {

using tensor::Index;

std::vector<int> ModelOracle::query(const Tensor& images) {
  queries_ += static_cast<std::size_t>(images.dim(0));
  return nn::predict(*victim_, images);
}

SubstituteResult train_substitute(LabelOracle& oracle, const Tensor& seeds,
                                  const SubstituteConfig& config) {
  if (!config.make_substitute) {
    throw std::invalid_argument("train_substitute: no substitute builder");
  }
  if (seeds.rank() < 2 || seeds.dim(0) < 2) {
    throw std::invalid_argument("train_substitute: need a seed batch");
  }

  Tensor train_images = seeds;
  std::vector<int> train_labels = oracle.query(train_images);

  SubstituteResult result{.substitute = config.make_substitute()};
  nn::TrainConfig tc;
  tc.epochs = config.epochs_per_round;
  tc.batch_size = config.batch_size;
  tc.base_lr = config.learning_rate;
  tc.shuffle_seed = config.seed;
  tc.use_paper_lr_schedule = false;

  for (int round = 0;; ++round) {
    nn::train_classifier(result.substitute, train_images, train_labels, tc);
    if (round >= config.augmentation_rounds) break;

    // Jacobian-based augmentation: for each current sample, step along the
    // sign of the substitute's gradient of the ORACLE label's logit — the
    // direction that most changes the substitute's view of that class —
    // and have the oracle label the new points.
    const Index n = train_images.dim(0);
    std::vector<Index> sample_dims = {1};
    for (Index i = 1; i < train_images.rank(); ++i) {
      sample_dims.push_back(train_images.dim(i));
    }
    const tensor::Shape one_shape{sample_dims};
    Tensor augmented = train_images;  // same shape: one new point per old
    const int num_classes = 10;
    for (Index i = 0; i < n; ++i) {
      Tensor x = tensor::slice_batch(train_images, i).reshaped(one_shape);
      Tensor grad = logit_input_gradient(
          result.substitute, x,
          train_labels[static_cast<std::size_t>(i)], num_classes);
      Tensor stepped = tensor::add_scaled(x, tensor::sign(grad),
                                          config.lambda);
      tensor::clamp_inplace(stepped, 0.0f, 1.0f);
      tensor::set_batch(augmented, i,
                        stepped.reshaped(tensor::slice_batch(train_images, i)
                                             .shape()));
    }
    std::vector<int> new_labels = oracle.query(augmented);

    // S <- S ∪ augmented
    std::vector<Index> dims = train_images.shape().dims();
    dims[0] = 2 * n;
    Tensor merged{tensor::Shape{dims}};
    for (Index i = 0; i < n; ++i) {
      tensor::set_batch(merged, i, tensor::slice_batch(train_images, i));
      tensor::set_batch(merged, n + i, tensor::slice_batch(augmented, i));
    }
    train_images = std::move(merged);
    train_labels.insert(train_labels.end(), new_labels.begin(),
                        new_labels.end());
  }

  result.oracle_queries = oracle.queries_used();
  result.final_train_size = train_images.dim(0);
  // agreement on the original seeds
  const std::vector<int> sub_pred = nn::predict(result.substitute, seeds);
  std::size_t agree = 0;
  for (Index i = 0; i < seeds.dim(0); ++i) {
    if (sub_pred[static_cast<std::size_t>(i)] ==
        train_labels[static_cast<std::size_t>(i)]) {
      ++agree;
    }
  }
  result.agreement =
      static_cast<double>(agree) / static_cast<double>(seeds.dim(0));
  return result;
}

Tensor nes_attack(
    const std::function<Tensor(const Tensor&)>& probability_oracle,
    const Tensor& images, const std::vector<int>& labels,
    const NesParams& params) {
  if (images.rank() < 2 ||
      static_cast<std::size_t>(images.dim(0)) != labels.size()) {
    throw std::invalid_argument("nes_attack: bad batch");
  }
  if (params.samples <= 0 || params.iterations <= 0 || params.sigma <= 0.0f) {
    throw std::invalid_argument("nes_attack: bad parameters");
  }
  util::Rng rng(params.seed);
  const Index n = images.dim(0);
  const Index per_sample = images.numel() / n;
  Tensor adv = images;

  std::vector<Index> sample_dims = {1};
  for (Index i = 1; i < images.rank(); ++i) sample_dims.push_back(images.dim(i));
  const tensor::Shape one_shape{sample_dims};

  for (Index s = 0; s < n; ++s) {
    const int y = labels[static_cast<std::size_t>(s)];
    Tensor x = tensor::slice_batch(adv, s).reshaped(one_shape);
    const Tensor x0 = x;
    for (int it = 0; it < params.iterations; ++it) {
      // NES estimate of ∇ₓ[-log p_y] via antithetic sampling.
      Tensor grad_est(x.shape());
      for (int k = 0; k < params.samples; ++k) {
        Tensor noise(x.shape());
        for (float& v : noise.flat()) v = rng.normal_f(0.0f, 1.0f);
        Tensor plus = tensor::add_scaled(x, noise, params.sigma);
        Tensor minus = tensor::add_scaled(x, noise, -params.sigma);
        tensor::clamp_inplace(plus, 0.0f, 1.0f);
        tensor::clamp_inplace(minus, 0.0f, 1.0f);
        const float p_plus =
            std::max(1e-12f, probability_oracle(plus).at({0, y}));
        const float p_minus =
            std::max(1e-12f, probability_oracle(minus).at({0, y}));
        const float score = -std::log(p_plus) + std::log(p_minus);
        tensor::add_scaled_inplace(grad_est, noise,
                                   score / (2.0f * params.sigma *
                                            static_cast<float>(params.samples)));
      }
      // FGSM step on the estimate, clipped to the per-iteration ball.
      float* xv = x.data();
      const float* g = grad_est.data();
      const float* orig = x0.data();
      const float ball =
          params.epsilon * static_cast<float>(params.iterations);
      for (Index i = 0; i < per_sample; ++i) {
        float v = xv[i] + params.epsilon *
                              (g[i] > 0.0f ? 1.0f : (g[i] < 0.0f ? -1.0f : 0.0f));
        v = std::min(orig[i] + ball, std::max(orig[i] - ball, v));
        xv[i] = std::min(1.0f, std::max(0.0f, v));
      }
    }
    tensor::set_batch(adv, s,
                      x.reshaped(tensor::slice_batch(images, s).shape()));
  }
  return adv;
}

}  // namespace con::attacks
