#include "attacks/params.h"

#include <stdexcept>

namespace con::attacks {

std::string attack_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kFgm: return "fgm";
    case AttackKind::kFgsm: return "fgsm";
    case AttackKind::kIfgm: return "ifgm";
    case AttackKind::kIfgsm: return "ifgsm";
    case AttackKind::kDeepFool: return "deepfool";
  }
  throw std::logic_error("unreachable attack kind");
}

AttackKind attack_from_name(const std::string& name) {
  if (name == "fgm") return AttackKind::kFgm;
  if (name == "fgsm") return AttackKind::kFgsm;
  if (name == "ifgm") return AttackKind::kIfgm;
  if (name == "ifgsm") return AttackKind::kIfgsm;
  if (name == "deepfool") return AttackKind::kDeepFool;
  throw std::invalid_argument("unknown attack: " + name);
}

AttackParams paper_params(AttackKind kind, const std::string& network) {
  const bool lenet = network.rfind("lenet5", 0) == 0;
  const bool cifar = network.rfind("cifarnet", 0) == 0;
  if (!lenet && !cifar) {
    throw std::invalid_argument("no paper params for network: " + network);
  }
  switch (kind) {
    case AttackKind::kIfgsm:
      return AttackParams{.epsilon = 0.02f, .iterations = 12};
    case AttackKind::kIfgm:
      return lenet ? AttackParams{.epsilon = 10.0f, .iterations = 5}
                   : AttackParams{.epsilon = 0.02f, .iterations = 12};
    case AttackKind::kDeepFool:
      return lenet ? AttackParams{.epsilon = 0.01f, .iterations = 5}
                   : AttackParams{.epsilon = 0.01f, .iterations = 3};
    case AttackKind::kFgsm:
      return AttackParams{.epsilon = 0.02f, .iterations = 1};
    case AttackKind::kFgm:
      return lenet ? AttackParams{.epsilon = 10.0f, .iterations = 1}
                   : AttackParams{.epsilon = 0.02f, .iterations = 1};
  }
  throw std::logic_error("unreachable attack kind");
}

}  // namespace con::attacks
