// Fast-gradient attack family (Goodfellow et al. 2015; iterative versions
// after Kurakin et al. 2016, Algorithm 1 of the paper).
//
// All attacks operate in pixel space: adversarial images are clamped to the
// valid [0, 1] domain, and each iteration's result is clipped to an L∞ ball
// of radius ε around the previous iterate ("the intermediate results get
// clipped to ensure that the resulting adversarial images lie within ε of
// the previous iteration", §3.3).
//
// The iterative loop is allocation-free in steady state: the iterate is
// updated in place (the ε-ball clip reads prev[i] before writing x[i], so
// aliasing is safe), the forward/backward tape is hoisted out of the loop
// and recycles its slot storage, and the last iteration writes directly
// into the caller's output rows.
#pragma once

#include <vector>

#include "attacks/params.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace con::attacks {

using tensor::Tensor;

// N in Algorithm 1: step along sign(∇ₓJ) (FGSM) or ∇ₓJ itself (FGM).
enum class FastGradientRule { kGradient, kSign };

// Single-step FGM: X + ε·∇ₓJ.
Tensor fgm(const nn::Sequential& model, const Tensor& images,
           const std::vector<int>& labels, const AttackParams& params);

// Single-step FGSM: X + ε·sign(∇ₓJ).
Tensor fgsm(const nn::Sequential& model, const Tensor& images,
            const std::vector<int>& labels, const AttackParams& params);

// Iterative FGSM (Algorithm 1): per-iteration sign step of ε, clipped.
Tensor ifgsm(const nn::Sequential& model, const Tensor& images,
             const std::vector<int>& labels, const AttackParams& params);

// Iterative FGM: identical except N = ∇ₓJ (gradient amplitudes, not sign).
Tensor ifgm(const nn::Sequential& model, const Tensor& images,
            const std::vector<int>& labels, const AttackParams& params);

// Attack rows [lo, hi) of `images`, writing adversarial rows straight into
// the same rows of `out_adversarial` (same shape as `images`). This is the
// non-copying entry the chunked attack driver uses: chunks read and write
// through row views of the shared batch, never through intermediate chunk
// tensors. Labels are indexed absolutely. The batch-mean loss gradient is
// rescaled by the chunk size, so per-row results do not depend on the
// chunking.
void fast_gradient_range(const nn::Sequential& model, const Tensor& images,
                         tensor::Index lo, tensor::Index hi,
                         const std::vector<int>& labels,
                         const AttackParams& params, FastGradientRule rule,
                         Tensor& out_adversarial);

}  // namespace con::attacks
