// Fast-gradient attack family (Goodfellow et al. 2015; iterative versions
// after Kurakin et al. 2016, Algorithm 1 of the paper).
//
// All attacks operate in pixel space: adversarial images are clamped to the
// valid [0, 1] domain, and each iteration's result is clipped to an L∞ ball
// of radius ε around the previous iterate ("the intermediate results get
// clipped to ensure that the resulting adversarial images lie within ε of
// the previous iteration", §3.3).
#pragma once

#include <vector>

#include "attacks/params.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace con::attacks {

using tensor::Tensor;

// Single-step FGM: X + ε·∇ₓJ.
Tensor fgm(const nn::Sequential& model, const Tensor& images,
           const std::vector<int>& labels, const AttackParams& params);

// Single-step FGSM: X + ε·sign(∇ₓJ).
Tensor fgsm(const nn::Sequential& model, const Tensor& images,
            const std::vector<int>& labels, const AttackParams& params);

// Iterative FGSM (Algorithm 1): per-iteration sign step of ε, clipped.
Tensor ifgsm(const nn::Sequential& model, const Tensor& images,
             const std::vector<int>& labels, const AttackParams& params);

// Iterative FGM: identical except N = ∇ₓJ (gradient amplitudes, not sign).
Tensor ifgm(const nn::Sequential& model, const Tensor& images,
            const std::vector<int>& labels, const AttackParams& params);

}  // namespace con::attacks
