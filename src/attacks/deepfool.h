// DeepFool (Moosavi-Dezfooli et al. 2016), L2 variant as used in the paper.
//
// Iteratively linearises the classifier around the current iterate and
// steps to the nearest linearised decision boundary; the final perturbation
// is inflated by a small overshoot (the paper's Table 1 ε) to push the
// sample across the boundary. Unlike IFGSM it neither scales nor clips
// gradients, which is why the paper finds it produces the smallest — and
// under quantisation the most fragile — perturbations.
//
// Two implementations with byte-identical outputs:
//  - deepfool(): batched active-set attack. One forward per iteration over
//    the set of not-yet-fooled samples, then num_classes batched backwards
//    (a [B, K] seed with one-hot column k yields ∇ₓf_k for every row at
//    once), per-row nearest-boundary selection, and live-set compaction so
//    work stays proportional to surviving samples.
//  - deepfool_reference(): the original per-sample loop (batch-of-1 forward
//    plus num_classes backwards per sample per iteration), kept as the
//    bit-identity oracle for tests and benches.
// The identity rests on the GEMM contract (DESIGN.md §5): every batch
// row's dot products are computed exactly as in a batch-of-1, and all
// other layers are per-row maps in eval mode.
#pragma once

#include <vector>

#include "attacks/params.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace con::attacks {

using tensor::Tensor;

struct DeepFoolResult {
  Tensor adversarial;      // same shape as the input batch
  std::vector<int> iterations_used;  // per sample
  std::vector<float> perturbation_l2;  // per sample, ‖x_adv − x‖₂
};

// params.epsilon = overshoot factor, params.iterations = max iterations.
// Batched active-set implementation.
DeepFoolResult deepfool(const nn::Sequential& model, const Tensor& images,
                        const std::vector<int>& labels,
                        const AttackParams& params, int num_classes = 10);

// Per-sample reference implementation; byte-identical to deepfool() but a
// batch-of-1 forward plus num_classes backwards per sample per iteration.
DeepFoolResult deepfool_reference(const nn::Sequential& model,
                                  const Tensor& images,
                                  const std::vector<int>& labels,
                                  const AttackParams& params,
                                  int num_classes = 10);

// Attack rows [lo, hi) of `images`, writing adversarial rows straight into
// the same rows of `out_adversarial` (same shape as `images`) and, when
// non-null, per-sample metadata at absolute indices [lo, hi) of
// `iterations_used` / `perturbation_l2`. This is the non-copying entry the
// chunked attack driver uses: chunks read and write through row views of
// the shared batch, never through intermediate chunk tensors. Labels are
// indexed absolutely. Per-row results do not depend on the chunking.
void deepfool_range(const nn::Sequential& model, const Tensor& images,
                    tensor::Index lo, tensor::Index hi,
                    const std::vector<int>& labels, const AttackParams& params,
                    int num_classes, Tensor& out_adversarial,
                    int* iterations_used, float* perturbation_l2);

// Convenience wrapper returning only the adversarial batch.
Tensor deepfool_images(const nn::Sequential& model, const Tensor& images,
                       const std::vector<int>& labels,
                       const AttackParams& params, int num_classes = 10);

}  // namespace con::attacks
