// DeepFool (Moosavi-Dezfooli et al. 2016), L2 variant as used in the paper.
//
// Iteratively linearises the classifier around the current iterate and
// steps to the nearest linearised decision boundary; the final perturbation
// is inflated by a small overshoot (the paper's Table 1 ε) to push the
// sample across the boundary. Unlike IFGSM it neither scales nor clips
// gradients, which is why the paper finds it produces the smallest — and
// under quantisation the most fragile — perturbations.
#pragma once

#include <vector>

#include "attacks/params.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace con::attacks {

using tensor::Tensor;

struct DeepFoolResult {
  Tensor adversarial;      // same shape as the input batch
  std::vector<int> iterations_used;  // per sample
  std::vector<float> perturbation_l2;  // per sample, ‖x_adv − x‖₂
};

// params.epsilon = overshoot factor, params.iterations = max iterations.
DeepFoolResult deepfool(const nn::Sequential& model, const Tensor& images,
                        const std::vector<int>& labels,
                        const AttackParams& params, int num_classes = 10);

// Convenience wrapper returning only the adversarial batch.
Tensor deepfool_images(const nn::Sequential& model, const Tensor& images,
                       const std::vector<int>& labels,
                       const AttackParams& params, int num_classes = 10);

}  // namespace con::attacks
