#include "nn/adam.h"

#include <cmath>
#include <stdexcept>

namespace con::nn {

using tensor::Index;

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float lr = config_.learning_rate;
  const float b1 = config_.beta1, b2 = config_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    const Index n = p.value.numel();
    if (p.grad.numel() != n) {
      throw std::logic_error("Adam: grad size mismatch for " + p.name);
    }
    const bool gated = !p.grad_gate.empty();
    float* w = p.value.data();
    const float* g = p.grad.data();
    const float* gate = gated ? p.grad_gate.data() : nullptr;
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (Index j = 0; j < n; ++j) {
      float gj = g[j];
      if (gate) gj *= gate[j];
      if (config_.weight_decay != 0.0f) gj += config_.weight_decay * w[j];
      m[j] = b1 * m[j] + (1.0f - b1) * gj;
      v[j] = b2 * v[j] + (1.0f - b2) * gj * gj;
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      w[j] -= lr * mhat / (std::sqrt(vhat) + config_.epsilon);
    }
    // In-place write: invalidate any packed-weight panels built from the
    // old values (nn/packed_weights.h).
    p.bump_version();
  }
}

}  // namespace con::nn
