// Cached packed weight panels for the GEMM-backed layers.
//
// Attacks run thousands of forward/backward passes against frozen weights,
// so Linear and Conv2d pack their effective (pruned/quantised) weight
// matrix into GEMM strips (tensor/gemm.h) once and reuse the panels for
// every subsequent call. The cache is invalidated by a fingerprint of the
// owning Parameter:
//
//   (version, value.data(), mask.data(), transform.get())
//
// `version` is the authoritative signal — every mutation site (optimizer
// step, pruner mask update, transform swap, checkpoint load, sensitivity
// scan save/restore) bumps it (see Parameter::bump_version). The storage
// pointers are a belt-and-braces check that catches tensor *reassignment*
// even where a bump was forgotten; they cannot catch in-place writes or
// same-capacity copy-assignment on their own, which is why the counter
// exists.
//
// Thread-safety: get() may be called from any number of concurrent eval
// forwards on a shared model (the transfer-study pattern). Readers receive
// a shared_ptr<const PackedWeights>, so a rebuild triggered by one thread
// never invalidates panels another thread is still multiplying with.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "nn/parameter.h"
#include "tensor/gemm.h"

namespace con::nn {

// One immutable snapshot of a parameter's effective weights, packed for
// the owning layer's forward and backward kernels.
struct PackedWeights {
  // Fingerprint of the Parameter state this snapshot was built from.
  std::uint64_t version = 0;
  const float* value_data = nullptr;
  const float* mask_data = nullptr;
  const void* transform = nullptr;

  Tensor effective;  // transform(value ⊙ mask) at build time
  Tensor gate;       // straight-through gate (empty when no transform)
  tensor::gemm::PackedMatrix fwd;  // operand panels for the forward GEMM
  tensor::gemm::PackedMatrix bwd;  // operand panels for the backward GEMM
};

class PackedWeightsCache {
 public:
  // Fills pw.fwd/pw.bwd from pw.effective; layer-specific (strip widths and
  // row/column-major orientation differ between Linear and Conv2d).
  using BuildFn = void (*)(PackedWeights& pw);

  PackedWeightsCache() = default;
  // Layer::clone copies layers wholesale; the copy must not share cache
  // state (its parameters are distinct objects), so it starts cold and
  // repacks on first use.
  PackedWeightsCache(const PackedWeightsCache&) {}
  PackedWeightsCache& operator=(const PackedWeightsCache&) { return *this; }

  // Returns the cached snapshot if the fingerprint still matches `p`,
  // otherwise rebuilds via `build` and caches the result.
  [[nodiscard]] std::shared_ptr<const PackedWeights> get(const Parameter& p,
                                           BuildFn build) const;

 private:
  mutable std::mutex mu_;
  mutable std::shared_ptr<const PackedWeights> current_;
};

}  // namespace con::nn
