// Cached packed weight panels for the GEMM-backed layers.
//
// Attacks run thousands of forward/backward passes against frozen weights,
// so Linear and Conv2d pack their effective (pruned/quantised) weight
// matrix into GEMM strips (tensor/gemm.h) once and reuse the panels for
// every subsequent call. The cache is invalidated by a fingerprint of the
// owning Parameter:
//
//   (version, value.data(), mask.data(), transform.get())
//
// `version` is the authoritative signal — every mutation site (optimizer
// step, pruner mask update, transform swap, checkpoint load, sensitivity
// scan save/restore) bumps it (see Parameter::bump_version). The storage
// pointers are a belt-and-braces check that catches tensor *reassignment*
// even where a bump was forgotten; they cannot catch in-place writes or
// same-capacity copy-assignment on their own, which is why the counter
// exists.
//
// Thread-safety: get() may be called from any number of concurrent eval
// forwards on a shared model (the transfer-study pattern). Readers receive
// a shared_ptr<const PackedWeights>, so a rebuild triggered by one thread
// never invalidates panels another thread is still multiplying with.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/parameter.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"

namespace con::nn {

// The fixed-point formats of a deployed-integer layer, as plain bit counts
// (integer_bits includes the sign). nn cannot see compress's
// FixedPointFormat — compress sits above nn — so the integer entry points
// take this POD and derive the (power-of-two) steps with ldexp, which
// matches FixedPointFormat::step() exactly. Part of the int8 panel cache
// fingerprint: panels quantised for one format pair never serve another.
struct Int8FormatKey {
  int weight_total_bits = 0;
  int weight_integer_bits = 0;
  int act_total_bits = 0;
  int act_integer_bits = 0;

  bool operator==(const Int8FormatKey& o) const {
    return weight_total_bits == o.weight_total_bits &&
           weight_integer_bits == o.weight_integer_bits &&
           act_total_bits == o.act_total_bits &&
           act_integer_bits == o.act_integer_bits;
  }
  bool operator!=(const Int8FormatKey& o) const { return !(*this == o); }
};

// One immutable snapshot of a parameter's effective weights, packed for
// the owning layer's forward and backward kernels.
struct PackedWeights {
  // Fingerprint of the Parameter state this snapshot was built from.
  std::uint64_t version = 0;
  const float* value_data = nullptr;
  const float* mask_data = nullptr;
  const void* transform = nullptr;

  Tensor effective;  // transform(value ⊙ mask) at build time
  Tensor gate;       // straight-through gate (empty when no transform)
  tensor::gemm::PackedMatrix fwd;  // operand panels for the forward GEMM
  tensor::gemm::PackedMatrix bwd;  // operand panels for the backward GEMM
};

// One immutable int8 snapshot of a quantised layer: weight codes packed
// into pair-interleaved panels (tensor/gemm_int8.h), the bias at
// accumulator scale, and the requantisation constants of the integer
// forward. Built only when the layer's weight transform snaps values onto
// a ≤ 8-bit fixed-point grid (the get_int8 caller passes the matching
// Int8FormatKey); quantising the effective weights here re-validates that
// every value is exactly on that grid.
struct PackedInt8Weights {
  // Fingerprint: the weight Parameter's state (as PackedWeights), plus the
  // bias Parameter and the format pair — int8 panels must never survive a
  // format change that float panels would shrug off.
  std::uint64_t version = 0;
  const float* value_data = nullptr;
  const float* mask_data = nullptr;
  const void* transform = nullptr;
  std::uint64_t bias_version = 0;
  const float* bias_data = nullptr;
  Int8FormatKey key;

  // Exactly one of these is filled, by layer orientation: Linear packs the
  // weights as the right operand (y = x·Wᵀ), Conv2d as the left (W·cols).
  tensor::gemm::PackedInt8A a;
  tensor::gemm::PackedInt8B b;

  std::vector<std::int32_t> bias_codes;  // accumulator scale sw·sa
  int shift = 0;                     // weight fraction bits
  std::int32_t out_lo = 0;           // activation code saturation bounds
  std::int32_t out_hi = 0;
  float out_scale = 0.0f;            // activation step (power of two)
  float act_inv_step = 0.0f;         // 1/step for quantising inputs
  float act_lo = 0.0f;               // activation value clamp bounds
  float act_hi = 0.0f;
};

class PackedWeightsCache {
 public:
  // Fills pw.fwd/pw.bwd from pw.effective; layer-specific (strip widths and
  // row/column-major orientation differ between Linear and Conv2d).
  using BuildFn = void (*)(PackedWeights& pw);

  // Packs the validated weight codes (row-major [rows, depth]) into the
  // layer's int8 panel orientation (pw.a or pw.b).
  using BuildInt8Fn = void (*)(PackedInt8Weights& pw,
                               const std::int8_t* codes, tensor::Index rows,
                               tensor::Index depth);

  PackedWeightsCache() = default;
  // Layer::clone copies layers wholesale; the copy must not share cache
  // state (its parameters are distinct objects), so it starts cold and
  // repacks on first use.
  PackedWeightsCache(const PackedWeightsCache&) {}
  PackedWeightsCache& operator=(const PackedWeightsCache&) { return *this; }

  // Returns the cached snapshot if the fingerprint still matches `p`,
  // otherwise rebuilds via `build` and caches the result.
  [[nodiscard]] std::shared_ptr<const PackedWeights> get(const Parameter& p,
                                           BuildFn build) const;

  // The int8 twin, in its own slot (a layer alternates freely between the
  // float and integer paths without thrashing either cache). Quantises
  // w.effective() to codes — throwing, with the offending index and value,
  // if any weight is off the key's grid or the format exceeds 8 bits —
  // snaps the bias to accumulator scale, validates int32 accumulator
  // headroom (depth·2¹⁴ plus |bias| must stay below 2³¹), computes the
  // requantisation constants, then lets `build` pack the panels.
  [[nodiscard]] std::shared_ptr<const PackedInt8Weights> get_int8(
      const Parameter& w, const Parameter& bias, const Int8FormatKey& key,
      BuildInt8Fn build) const;

 private:
  mutable std::mutex mu_;
  mutable std::shared_ptr<const PackedWeights> current_;
  mutable std::shared_ptr<const PackedInt8Weights> int8_current_;
};

}  // namespace con::nn
