#include "nn/sequential.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "tensor/ops.h"

namespace con::nn {

void Sequential::insert(std::size_t index, std::unique_ptr<Layer> layer) {
  if (index > layers_.size()) {
    throw std::out_of_range("Sequential::insert: index out of range");
  }
  layers_.insert(layers_.begin() + static_cast<std::ptrdiff_t>(index),
                 std::move(layer));
}

Tensor Sequential::forward(const Tensor& x, bool train,
                           ForwardTape& tape) const {
  // Dispatch the first layer against `x` directly instead of copying the
  // batch into a working tensor — forward is called once per attack
  // iteration, so the head copy was a full-batch allocation per step.
  if (layers_.empty()) return x;
  obs::Span span(name_, "forward");
  static obs::Counter& calls = obs::counter("model.forward_calls");
  calls.add(1);
  Tensor h = layers_[0]->forward(x, train, tape.slot(0));
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    h = layers_[i]->forward(h, train, tape.slot(i));
  }
  return h;
}

Tensor Sequential::backward(const Tensor& grad_logits,
                            ForwardTape& tape) const {
  if (tape.size() < layers_.size()) {
    throw std::invalid_argument(
        "Sequential::backward: tape has no matching forward");
  }
  if (layers_.empty()) return grad_logits;
  obs::Span span(name_, "backward");
  static obs::Counter& calls = obs::counter("model.backward_calls");
  calls.add(1);
  const std::size_t last = layers_.size() - 1;
  Tensor g = layers_[last]->backward(grad_logits, tape.slot(last));
  for (std::size_t i = last; i-- > 0;) {
    g = layers_[i]->backward(g, tape.slot(i));
  }
  return g;
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  return forward(x, train, scratch_tape_);
}

Tensor Sequential::backward(const Tensor& grad_logits) {
  return backward(grad_logits, scratch_tape_);
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

std::vector<const Parameter*> Sequential::parameters() const {
  std::vector<const Parameter*> params;
  for (const auto& layer : layers_) {
    // Layer::parameters() is non-const only because callers may mutate the
    // parameters; the call itself does not modify the layer.
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

void Sequential::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

tensor::Index Sequential::num_parameters() const {
  tensor::Index n = 0;
  for (const Parameter* p : parameters()) n += p->value.numel();
  return n;
}

double Sequential::density() const {
  tensor::Index total = 0;
  tensor::Index nonzero = 0;
  for (const Parameter* p : parameters()) {
    if (!p->compressible) continue;
    total += p->value.numel();
    if (p->has_mask()) {
      for (float m : p->mask.flat()) {
        if (m != 0.0f) ++nonzero;
      }
    } else {
      nonzero += p->value.numel();
    }
  }
  if (total == 0) return 1.0;
  return static_cast<double>(nonzero) / static_cast<double>(total);
}

Sequential Sequential::clone() const {
  Sequential copy(name_);
  for (const auto& layer : layers_) copy.add(layer->clone());
  return copy;
}

std::string Sequential::summary() const {
  std::string s = name_ + " (" + std::to_string(num_parameters()) +
                  " parameters, density " +
                  std::to_string(density()) + ")\n";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    s += "  [" + std::to_string(i) + "] " + layers_[i]->name() + "\n";
  }
  return s;
}

}  // namespace con::nn
