// Adam optimizer (Kingma & Ba), provided alongside SGD: compressed-model
// fine-tuning in the wild frequently uses Adam, and having a second
// optimizer exercises the Parameter/grad_gate seam from another direction.
#pragma once

#include <vector>

#include "nn/parameter.h"

namespace con::nn {

struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamConfig config);

  // Respects grad_gate (saturating STE) exactly like Sgd::step.
  void step();

  void set_learning_rate(float lr) { config_.learning_rate = lr; }
  float learning_rate() const { return config_.learning_rate; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  AdamConfig config_;
  long t_ = 0;
};

}  // namespace con::nn
