// Caller-owned execution state for forward/backward passes.
//
// Layers are stateless with respect to a single call: everything a backward
// pass needs from the preceding forward lives in a TapeSlot, and a
// ForwardTape holds one slot per layer of a Sequential. Because the tape is
// owned by the caller, any number of threads can run forward/backward on
// the SAME model concurrently, each with its own tape — the property the
// transfer-study harness relies on to evaluate a model × attack matrix in
// parallel without cloning models.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace con::nn {

using tensor::Tensor;

struct PackedWeights;

// Per-layer forward record. The fields are a union-of-needs across the
// layer zoo; each layer uses the subset documented next to it and ignores
// the rest:
//   Linear         input, packed (weight panels used by the forward)
//   Conv2d         columns (batched im2col), packed, geom, batch
//   BatchNorm2d    aux (xhat), stats (inv_std), in_shape, flag (train mode)
//   ReLU           input
//   Tanh           output
//   MaxPool2d      indices (argmax), in_shape
//   AvgPool2d      in_shape
//   Flatten        in_shape
//   Dropout        aux (scaled keep mask; empty in eval mode)
//   QuantActivation aux (STE gate)
struct TapeSlot {
  Tensor input;
  Tensor output;
  Tensor aux;
  Tensor stats;
  Tensor columns;
  // The weight snapshot the forward multiplied with. Backward reuses it so
  // a weight mutation between forward and backward (which would be a bug in
  // the caller anyway) cannot desynchronise the pair, and so the backward
  // GEMM gets pre-packed panels for free.
  std::shared_ptr<const PackedWeights> packed;
  tensor::Shape in_shape;
  tensor::Conv2dGeometry geom;
  std::vector<tensor::Index> indices;
  tensor::Index batch = 0;
  bool flag = false;
  // When false, Layer::backward skips accumulating into Parameter::grad and
  // only propagates the input gradient. Attacks need ∇ₓ only; skipping the
  // shared-parameter accumulation is what makes concurrent backward passes
  // on one model race-free.
  bool accumulate_param_grads = true;
};

// One slot per layer, owned by whoever drives the pass. Reusing a tape
// across calls is encouraged — slots recycle their tensor storage.
class ForwardTape {
 public:
  ForwardTape() = default;
  explicit ForwardTape(bool accumulate_param_grads)
      : accumulate_(accumulate_param_grads) {}

  TapeSlot& slot(std::size_t i) {
    if (i >= slots_.size()) slots_.resize(i + 1);
    TapeSlot& s = slots_[i];
    s.accumulate_param_grads = accumulate_;
    return s;
  }

  void set_accumulate_param_grads(bool accumulate) {
    accumulate_ = accumulate;
    for (TapeSlot& s : slots_) s.accumulate_param_grads = accumulate;
  }
  bool accumulate_param_grads() const { return accumulate_; }

  std::size_t size() const { return slots_.size(); }

 private:
  std::vector<TapeSlot> slots_;
  bool accumulate_ = true;
};

}  // namespace con::nn
