#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace con::nn {

using tensor::Index;

BatchNorm2d::BatchNorm2d(Index channels, float momentum, float epsilon,
                         std::string layer_name)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      name_(std::move(layer_name)),
      gamma_(name_ + ".gamma", Tensor({channels}, 1.0f)),
      beta_(name_ + ".beta", Tensor({channels})),
      running_mean_({channels}),
      running_var_(Tensor({channels}, 1.0f)) {
  if (channels <= 0) throw std::invalid_argument(name_ + ": bad channels");
  // Scale/shift are tiny and structural — never prune or quantise them.
  gamma_.compressible = false;
  beta_.compressible = false;
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train, TapeSlot& slot) const {
  if (x.rank() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument(name_ + ": expected [N, C, H, W] input");
  }
  const Index n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const Index plane = h * w;
  const Index per_channel = n * plane;
  slot.in_shape = x.shape();
  slot.flag = train;

  Tensor mean({channels_});
  Tensor var({channels_});
  if (train) {
    for (Index c = 0; c < channels_; ++c) {
      double acc = 0.0;
      for (Index i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * plane;
        for (Index j = 0; j < plane; ++j) acc += p[j];
      }
      mean[c] = static_cast<float>(acc / per_channel);
      double vacc = 0.0;
      for (Index i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * plane;
        for (Index j = 0; j < plane; ++j) {
          const double d = p[j] - mean[c];
          vacc += d * d;
        }
      }
      var[c] = static_cast<float>(vacc / per_channel);
      // conlint:allow(layer-reentrancy): running-stat update only in train mode, which is single-threaded by contract
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * mean[c];
      // conlint:allow(layer-reentrancy): running-stat update only in train mode, which is single-threaded by contract
      running_var_[c] =
          (1.0f - momentum_) * running_var_[c] + momentum_ * var[c];
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  slot.stats = Tensor({channels_});
  for (Index c = 0; c < channels_; ++c) {
    slot.stats[c] = 1.0f / std::sqrt(var[c] + epsilon_);
  }
  Tensor y(x.shape());
  slot.aux = Tensor(x.shape());
  for (Index i = 0; i < n; ++i) {
    for (Index c = 0; c < channels_; ++c) {
      const float* p = x.data() + (i * channels_ + c) * plane;
      float* xh = slot.aux.data() + (i * channels_ + c) * plane;
      float* yo = y.data() + (i * channels_ + c) * plane;
      const float m = mean[c], is = slot.stats[c];
      const float g = gamma_.value[c], b = beta_.value[c];
      for (Index j = 0; j < plane; ++j) {
        xh[j] = (p[j] - m) * is;
        yo[j] = g * xh[j] + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out, TapeSlot& slot) const {
  if (grad_out.shape() != slot.in_shape) {
    throw std::invalid_argument(name_ + ": grad shape mismatch");
  }
  const Index n = slot.in_shape.dim(0), h = slot.in_shape.dim(2),
              w = slot.in_shape.dim(3);
  const Index plane = h * w;
  const auto m = static_cast<double>(n * plane);

  Tensor gx(slot.in_shape);
  for (Index c = 0; c < channels_; ++c) {
    // accumulate dgamma, dbeta and the two correction sums
    double dgamma = 0.0, dbeta = 0.0, sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (Index i = 0; i < n; ++i) {
      const float* dy = grad_out.data() + (i * channels_ + c) * plane;
      const float* xh = slot.aux.data() + (i * channels_ + c) * plane;
      for (Index j = 0; j < plane; ++j) {
        dgamma += static_cast<double>(dy[j]) * xh[j];
        dbeta += dy[j];
      }
    }
    sum_dy = dbeta;
    sum_dy_xhat = dgamma;
    if (slot.accumulate_param_grads) {
      gamma_.grad[c] += static_cast<float>(dgamma);
      beta_.grad[c] += static_cast<float>(dbeta);
    }

    const float g = gamma_.value[c];
    const float is = slot.stats[c];
    for (Index i = 0; i < n; ++i) {
      const float* dy = grad_out.data() + (i * channels_ + c) * plane;
      const float* xh = slot.aux.data() + (i * channels_ + c) * plane;
      float* gxp = gx.data() + (i * channels_ + c) * plane;
      for (Index j = 0; j < plane; ++j) {
        if (slot.flag) {
          gxp[j] = static_cast<float>(
              g * is *
              (dy[j] - sum_dy / m - xh[j] * sum_dy_xhat / m));
        } else {
          // eval mode: running stats are constants
          gxp[j] = g * is * dy[j];
        }
      }
    }
  }
  return gx;
}

std::unique_ptr<Layer> BatchNorm2d::clone() const {
  return std::unique_ptr<Layer>(new BatchNorm2d(*this));
}

}  // namespace con::nn
