#include "nn/reshape.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace con::nn {

using tensor::Index;
using tensor::Shape;

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() < 2) {
    throw std::invalid_argument(name_ + ": expected rank >= 2");
  }
  cached_in_shape_ = x.shape();
  return x.reshaped(Shape{{x.dim(0), x.numel() / x.dim(0)}});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_in_shape_);
}

Dropout::Dropout(double drop_probability, std::uint64_t seed,
                 std::string layer_name)
    : p_(drop_probability), name_(std::move(layer_name)), rng_(seed) {
  if (p_ < 0.0 || p_ >= 1.0) {
    throw std::invalid_argument(name_ + ": drop probability must be in [0,1)");
  }
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || p_ == 0.0) {
    cached_mask_ = Tensor();
    return x;
  }
  cached_mask_ = Tensor(x.shape());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  for (float& m : cached_mask_.flat()) {
    m = rng_.bernoulli(p_) ? 0.0f : keep_scale;
  }
  return tensor::mul(x, cached_mask_);
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (cached_mask_.empty()) return grad_out;
  return tensor::mul(grad_out, cached_mask_);
}

std::unique_ptr<Layer> Dropout::clone() const {
  auto copy = std::make_unique<Dropout>(p_, 0, name_);
  copy->rng_ = rng_;
  return copy;
}

}  // namespace con::nn
