#include "nn/reshape.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace con::nn {

using tensor::Index;
using tensor::Shape;

Tensor Flatten::forward(const Tensor& x, bool /*train*/, TapeSlot& slot) const {
  if (x.rank() < 2) {
    throw std::invalid_argument(name_ + ": expected rank >= 2");
  }
  slot.in_shape = x.shape();
  return x.reshaped(Shape{{x.dim(0), x.numel() / x.dim(0)}});
}

Tensor Flatten::backward(const Tensor& grad_out, TapeSlot& slot) const {
  return grad_out.reshaped(slot.in_shape);
}

Dropout::Dropout(double drop_probability, std::uint64_t seed,
                 std::string layer_name)
    : p_(drop_probability), name_(std::move(layer_name)), rng_(seed) {
  if (p_ < 0.0 || p_ >= 1.0) {
    throw std::invalid_argument(name_ + ": drop probability must be in [0,1)");
  }
}

Tensor Dropout::forward(const Tensor& x, bool train, TapeSlot& slot) const {
  if (!train || p_ == 0.0) {
    slot.aux = Tensor();  // empty mask marks an eval-mode forward
    return x;
  }
  slot.aux = Tensor(x.shape());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  for (float& m : slot.aux.flat()) {
    m = rng_.bernoulli(p_) ? 0.0f : keep_scale;
  }
  return tensor::mul(x, slot.aux);
}

Tensor Dropout::backward(const Tensor& grad_out, TapeSlot& slot) const {
  if (slot.aux.empty()) return grad_out;
  return tensor::mul(grad_out, slot.aux);
}

std::unique_ptr<Layer> Dropout::clone() const {
  auto copy = std::make_unique<Dropout>(p_, 0, name_);
  copy->rng_ = rng_;
  return copy;
}

}  // namespace con::nn
