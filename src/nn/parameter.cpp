#include "nn/parameter.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace con::nn {

Tensor Parameter::effective() {
  Tensor eff = value;
  if (has_mask()) {
    if (mask.shape() != value.shape()) {
      throw std::logic_error("parameter " + name + ": mask shape " +
                             mask.shape().to_string() + " != value shape " +
                             value.shape().to_string());
    }
    tensor::mul_inplace(eff, mask);
  }
  if (transform) {
    Tensor out(eff.shape());
    grad_gate = Tensor(eff.shape());
    transform->apply(eff, out, grad_gate);
    return out;
  }
  grad_gate = Tensor();
  return eff;
}

double Parameter::pruned_fraction() const {
  if (!has_mask()) return 0.0;
  return tensor::zero_fraction(mask);
}

}  // namespace con::nn
