#include "nn/parameter.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace con::nn {

Tensor Parameter::effective(Tensor& gate_out) const {
  Tensor eff = value;
  if (has_mask()) {
    if (mask.shape() != value.shape()) {
      throw std::logic_error("parameter " + name + ": mask shape " +
                             mask.shape().to_string() + " != value shape " +
                             value.shape().to_string());
    }
    tensor::mul_inplace(eff, mask);
  }
  if (transform) {
    Tensor out(eff.shape());
    gate_out = Tensor(eff.shape());
    transform->apply(eff, out, gate_out);
    return out;
  }
  gate_out = Tensor();
  return eff;
}

Tensor Parameter::effective() { return effective(grad_gate); }

double Parameter::pruned_fraction() const {
  if (!has_mask()) return 0.0;
  return tensor::zero_fraction(mask);
}

}  // namespace con::nn
