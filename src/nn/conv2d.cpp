#include "nn/conv2d.h"

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "obs/obs.h"
#include "tensor/gemm.h"
#include "tensor/random.h"

namespace con::nn {

using tensor::Index;
using tensor::Tensor;

namespace {

// out = W · cols wants W packed row-major as the left operand (rows =
// outC); dcols = Wᵀ · go wants W as the left operand of a TN product,
// i.e. packed along columns (rows = C·k·k).
void pack_conv(PackedWeights& pw) {
  pw.fwd = tensor::gemm::pack_rowmajor(pw.effective, tensor::gemm::kStripA);
  pw.bwd = tensor::gemm::pack_colmajor(pw.effective, tensor::gemm::kStripA);
}

// out = W · cols puts the weight codes on the left: A panels, rows = outC.
void pack_conv_int8(PackedInt8Weights& pw, const std::int8_t* codes,
                    Index rows, Index depth) {
  pw.a = tensor::gemm::pack_int8_a(codes, rows, depth);
}

}  // namespace

Conv2d::Conv2d(const Conv2dSpec& spec, con::util::Rng& rng,
               std::string layer_name)
    : spec_(spec),
      name_(std::move(layer_name)),
      weight_(name_ + ".weight",
              Tensor({spec.out_channels,
                      spec.in_channels * spec.kernel * spec.kernel})),
      bias_(name_ + ".bias", Tensor({spec.out_channels})) {
  if (spec.in_channels <= 0 || spec.out_channels <= 0 || spec.kernel <= 0) {
    throw std::invalid_argument(name_ + ": invalid conv spec");
  }
  tensor::fill_kaiming_normal(weight_.value, rng,
                              spec.in_channels * spec.kernel * spec.kernel);
  bias_.compressible = false;
}

Tensor Conv2d::forward(const Tensor& x, bool train, TapeSlot& slot) const {
  if (x.rank() != 4 || x.dim(1) != spec_.in_channels) {
    throw std::invalid_argument(name_ + ": expected input [N, " +
                                std::to_string(spec_.in_channels) +
                                ", H, W], got " + x.shape().to_string());
  }
  obs::Span span(name_, "fwd");
  obs::ScopedTimer timer(fwd_time_.get(name_ + ".forward_s"),
                         fwd_hist_.get(name_ + ".forward_ns"));
  const Index n = x.dim(0);
  slot.geom = tensor::Conv2dGeometry{
      .in_channels = spec_.in_channels,
      .in_h = x.dim(2),
      .in_w = x.dim(3),
      .kernel_h = spec_.kernel,
      .kernel_w = spec_.kernel,
      .stride = spec_.stride,
      .padding = spec_.padding,
  };
  const Index oh = slot.geom.out_h(), ow = slot.geom.out_w();
  slot.packed = cache_.get(weight_, &pack_conv);
  if (train) weight_.grad_gate = slot.packed->gate;
  slot.batch = n;

  // One im2col + one GEMM for the whole batch:
  // out[outC, N*P] = W[outC, C*k*k] * cols[C*k*k, N*P].
  slot.columns = tensor::im2col_batch(x, slot.geom);
  Tensor out = tensor::gemm::matmul_nn(slot.packed->fwd, slot.columns);

  // Scatter [outC, N*P] into NCHW order and add the bias.
  Tensor y({n, spec_.out_channels, oh, ow});
  const Index plane = oh * ow;
  const Index total = n * plane;
  const float* od = out.data();
  const float* bd = bias_.value.data();
  float* yd = y.data();
  for (Index i = 0; i < n; ++i) {
    for (Index c = 0; c < spec_.out_channels; ++c) {
      const float* src = od + c * total + i * plane;
      float* dst = yd + (i * spec_.out_channels + c) * plane;
      const float b = bd[c];
      for (Index p = 0; p < plane; ++p) dst[p] = src[p] + b;
    }
  }
  return y;
}

Tensor Conv2d::forward_int8(const Tensor& x, const Int8FormatKey& key) const {
  if (x.rank() != 4 || x.dim(1) != spec_.in_channels) {
    throw std::invalid_argument(name_ + ": expected input [N, " +
                                std::to_string(spec_.in_channels) +
                                ", H, W], got " + x.shape().to_string());
  }
  obs::Span span(name_, "int8");
  const Index n = x.dim(0);
  const tensor::Conv2dGeometry geom{
      .in_channels = spec_.in_channels,
      .in_h = x.dim(2),
      .in_w = x.dim(3),
      .kernel_h = spec_.kernel,
      .kernel_w = spec_.kernel,
      .stride = spec_.stride,
      .padding = spec_.padding,
  };
  const Index oh = geom.out_h(), ow = geom.out_w();
  const Index plane = oh * ow;
  const Index total = n * plane;
  const Index patch = spec_.in_channels * spec_.kernel * spec_.kernel;
  const auto pw = cache_.get_int8(weight_, bias_, key, &pack_conv_int8);

  // Input codes, lowered to the k-major im2col layout the int8 GEMM
  // consumes as a raw right operand.
  std::vector<std::int8_t> xcodes(static_cast<std::size_t>(x.numel()));
  tensor::gemm::quantize_codes(xcodes.data(), x.data(), pw->act_inv_step,
                               pw->act_lo, pw->act_hi, x.numel());
  std::vector<std::int8_t> cols(static_cast<std::size_t>(patch * total));
  tensor::gemm::im2col_int8_batch(xcodes.data(), n, geom, cols.data());

  // acc[outC, N*P] in int32, requantised with the per-row (channel) bias —
  // the bias is folded at accumulator scale, so nothing is re-added below.
  std::vector<std::int32_t> acc(
      static_cast<std::size_t>(spec_.out_channels * total));
  tensor::gemm::Int8BSource bs{.raw = cols.data(), .ld = total};
  tensor::gemm::matmul_int8(pw->a, bs, total, acc.data());
  Tensor out({spec_.out_channels, total});
  tensor::gemm::requantize_row_bias(out.data(), acc.data(),
                                    pw->bias_codes.data(), pw->shift,
                                    pw->out_lo, pw->out_hi, pw->out_scale,
                                    spec_.out_channels, total);

  // Scatter [outC, N*P] into NCHW order.
  Tensor y({n, spec_.out_channels, oh, ow});
  const float* od = out.data();
  float* yd = y.data();
  for (Index i = 0; i < n; ++i) {
    for (Index c = 0; c < spec_.out_channels; ++c) {
      std::memcpy(yd + (i * spec_.out_channels + c) * plane,
                  od + c * total + i * plane,
                  static_cast<std::size_t>(plane) * sizeof(float));
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out, TapeSlot& slot) const {
  const Index n = slot.batch;
  const Index oh = slot.geom.out_h(), ow = slot.geom.out_w();
  const Index plane = oh * ow;
  if (grad_out.rank() != 4 || grad_out.dim(0) != n ||
      grad_out.dim(1) != spec_.out_channels || grad_out.dim(2) != oh ||
      grad_out.dim(3) != ow) {
    throw std::invalid_argument(name_ + ": bad grad_out shape " +
                                grad_out.shape().to_string());
  }
  obs::Span span(name_, "bwd");
  obs::ScopedTimer timer(bwd_time_.get(name_ + ".backward_s"),
                         bwd_hist_.get(name_ + ".backward_ns"));
  // Gather the NCHW gradient into the [outC, N*P] layout of the forward
  // GEMM output.
  const Index total = n * plane;
  Tensor go({spec_.out_channels, total});
  {
    const float* gd = grad_out.data();
    float* god = go.data();
    for (Index i = 0; i < n; ++i) {
      for (Index c = 0; c < spec_.out_channels; ++c) {
        std::memcpy(god + c * total + i * plane,
                    gd + (i * spec_.out_channels + c) * plane,
                    static_cast<std::size_t>(plane) * sizeof(float));
      }
    }
  }
  if (slot.accumulate_param_grads) {
    // dW += go[outC, N*P] * cols[CKK, N*P]^T — one GEMM for the batch.
    Tensor dw = tensor::matmul_nt(go, slot.columns);
    tensor::add_inplace(weight_.grad, dw);
    // db += row sums of go
    float* bg = bias_.grad.data();
    const float* god = go.data();
    for (Index c = 0; c < spec_.out_channels; ++c) {
      double acc = 0.0;
      for (Index p = 0; p < total; ++p) acc += god[c * total + p];
      bg[c] += static_cast<float>(acc);
    }
  }
  // dcols[CKK, N*P] = W^T * go
  Tensor dcols = tensor::gemm::matmul_tn(slot.packed->bwd, go);
  return tensor::col2im_batch(dcols, n, slot.geom);
}

std::unique_ptr<Layer> Conv2d::clone() const {
  return std::unique_ptr<Layer>(new Conv2d(*this));
}

}  // namespace con::nn
