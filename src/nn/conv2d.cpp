#include "nn/conv2d.h"

#include <cstring>
#include <stdexcept>

#include "tensor/random.h"

namespace con::nn {

using tensor::Index;
using tensor::Tensor;

Conv2d::Conv2d(const Conv2dSpec& spec, con::util::Rng& rng,
               std::string layer_name)
    : spec_(spec),
      name_(std::move(layer_name)),
      weight_(name_ + ".weight",
              Tensor({spec.out_channels,
                      spec.in_channels * spec.kernel * spec.kernel})),
      bias_(name_ + ".bias", Tensor({spec.out_channels})) {
  if (spec.in_channels <= 0 || spec.out_channels <= 0 || spec.kernel <= 0) {
    throw std::invalid_argument(name_ + ": invalid conv spec");
  }
  tensor::fill_kaiming_normal(weight_.value, rng,
                              spec.in_channels * spec.kernel * spec.kernel);
  bias_.compressible = false;
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  if (x.rank() != 4 || x.dim(1) != spec_.in_channels) {
    throw std::invalid_argument(name_ + ": expected input [N, " +
                                std::to_string(spec_.in_channels) +
                                ", H, W], got " + x.shape().to_string());
  }
  const Index n = x.dim(0);
  geom_ = tensor::Conv2dGeometry{
      .in_channels = spec_.in_channels,
      .in_h = x.dim(2),
      .in_w = x.dim(3),
      .kernel_h = spec_.kernel,
      .kernel_w = spec_.kernel,
      .stride = spec_.stride,
      .padding = spec_.padding,
  };
  const Index oh = geom_.out_h(), ow = geom_.out_w();
  cached_effective_ = weight_.effective();
  cached_columns_.assign(static_cast<std::size_t>(n), Tensor());
  cached_batch_ = n;

  Tensor y({n, spec_.out_channels, oh, ow});
  const Index plane = oh * ow;
  const float* bd = bias_.value.data();
  for (Index i = 0; i < n; ++i) {
    Tensor image = tensor::slice_batch(x, i);
    cached_columns_[static_cast<std::size_t>(i)] = tensor::im2col(image, geom_);
    // out[outC, oh*ow] = W[outC, C*k*k] * cols[C*k*k, oh*ow]
    Tensor out = tensor::matmul(cached_effective_,
                                cached_columns_[static_cast<std::size_t>(i)]);
    float* od = out.data();
    for (Index c = 0; c < spec_.out_channels; ++c) {
      const float b = bd[c];
      for (Index p = 0; p < plane; ++p) od[c * plane + p] += b;
    }
    std::memcpy(y.data() + i * spec_.out_channels * plane, out.data(),
                static_cast<std::size_t>(spec_.out_channels * plane) *
                    sizeof(float));
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Index n = cached_batch_;
  const Index oh = geom_.out_h(), ow = geom_.out_w();
  const Index plane = oh * ow;
  if (grad_out.rank() != 4 || grad_out.dim(0) != n ||
      grad_out.dim(1) != spec_.out_channels || grad_out.dim(2) != oh ||
      grad_out.dim(3) != ow) {
    throw std::invalid_argument(name_ + ": bad grad_out shape " +
                                grad_out.shape().to_string());
  }
  Tensor grad_in({n, spec_.in_channels, geom_.in_h, geom_.in_w});
  float* bg = bias_.grad.data();
  for (Index i = 0; i < n; ++i) {
    // View this sample's output gradient as a [outC, oh*ow] matrix.
    Tensor go({spec_.out_channels, plane});
    std::memcpy(go.data(), grad_out.data() + i * spec_.out_channels * plane,
                static_cast<std::size_t>(spec_.out_channels * plane) *
                    sizeof(float));
    const Tensor& cols = cached_columns_[static_cast<std::size_t>(i)];
    // dW += go[outC, P] * cols[CKK, P]^T
    Tensor dw = tensor::matmul_nt(go, cols);
    tensor::add_inplace(weight_.grad, dw);
    // db += row sums of go
    const float* god = go.data();
    for (Index c = 0; c < spec_.out_channels; ++c) {
      double acc = 0.0;
      for (Index p = 0; p < plane; ++p) acc += god[c * plane + p];
      bg[c] += static_cast<float>(acc);
    }
    // dcols[CKK, P] = W^T * go
    Tensor dcols = tensor::matmul_tn(cached_effective_, go);
    Tensor dimage = tensor::col2im(dcols, geom_);
    tensor::set_batch(grad_in, i, dimage);
  }
  return grad_in;
}

std::unique_ptr<Layer> Conv2d::clone() const {
  return std::unique_ptr<Layer>(new Conv2d(*this));
}

}  // namespace con::nn
