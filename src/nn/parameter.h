// Trainable parameter with optional pruning mask and weight transform.
//
// This is the seam where the compression library plugs into the NN
// framework:
//  - `mask` implements fine-grained pruning (dynamic network surgery): the
//    forward pass uses value ⊙ mask, while the optimizer keeps updating the
//    dense `value`, so pruned weights continue to learn and may re-join when
//    the mask is recomputed (Guo et al. 2016).
//  - `transform` implements fake-quantisation of weights: the forward pass
//    uses transform(value ⊙ mask) and `grad_gate` records where the
//    saturating straight-through estimator lets gradient flow back.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "tensor/tensor.h"

namespace con::nn {

using tensor::Tensor;

// Interface for weight-space transforms applied on top of masking.
class WeightTransform {
 public:
  virtual ~WeightTransform() = default;

  // Maps raw (already masked) weights to effective weights. `gate` must be
  // filled with 1 where gradient should flow back to the raw weight and 0
  // where it is blocked (e.g. values saturated by fixed-point clipping).
  virtual void apply(const Tensor& raw, Tensor& effective,
                     Tensor& gate) const = 0;

  virtual std::string describe() const = 0;
};

struct Parameter {
  std::string name;
  Tensor value;
  // Gradient accumulator. Mutable because it is not logical model state:
  // const (reentrant) backward passes may accumulate into it when their
  // tape asks for parameter gradients — by contract only one such pass
  // runs at a time (training is single-threaded).
  mutable Tensor grad;
  // Pruning mask; empty tensor means "dense". Same shape as value when set.
  Tensor mask;
  // Gradient gate consumed by the optimizers at step() time; refreshed by
  // train-mode forward passes. Empty when no transform is attached. Mutable
  // for the same reason as `grad`.
  mutable Tensor grad_gate;
  std::shared_ptr<const WeightTransform> transform;
  // Dense parameters that should never be pruned/quantised (biases) set
  // this to false; compression passes respect it.
  bool compressible = true;
  // Mutation counter backing the packed-weight cache (nn/packed_weights.h).
  // Contract: any code that changes what `effective()` would return — an
  // optimizer step, a pruner mask refresh, a transform swap, a checkpoint
  // load — must call bump_version(). The cache also fingerprints the
  // value/mask/transform storage pointers, but that alone is defeated by
  // same-shape copy-assignment (std::vector reuses the allocation), so the
  // counter is the authoritative signal.
  std::uint64_t version = 1;

  explicit Parameter(std::string param_name, Tensor initial)
      : name(std::move(param_name)),
        value(std::move(initial)),
        grad(value.shape()) {}

  // The weights actually used by the forward pass: transform(value ⊙ mask).
  // Writes the straight-through-estimator gate (empty when no transform)
  // into `gate_out` instead of touching member state, so concurrent
  // forwards on a shared model do not race.
  Tensor effective(Tensor& gate_out) const;

  // Legacy single-threaded form: refreshes member grad_gate as a side
  // effect. Kept for analysis code that only wants the weights.
  Tensor effective();

  // True if a mask is attached (even an all-ones one).
  bool has_mask() const { return !mask.empty(); }

  // Fraction of mask entries equal to zero; 0 for dense parameters.
  double pruned_fraction() const;

  void zero_grad() { grad.zero(); }

  // Declare that value/mask/transform changed; see `version`.
  void bump_version() { ++version; }
};

}  // namespace con::nn
