// SGD with momentum plus the paper's step learning-rate schedule.
//
// The study fine-tunes compressed models with "three scheduled learning rate
// decays starting from 0.01; for each decay, the learning rate decreases by
// a factor of 10" — StepLrSchedule reproduces exactly that shape.
#pragma once

#include <vector>

#include "nn/parameter.h"

namespace con::nn {

struct SgdConfig {
  float learning_rate = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, SgdConfig config);

  // One update step. Respects each parameter's grad_gate (saturating STE
  // for quantised weights). Does NOT mask gradients: dynamic network
  // surgery requires pruned weights to keep receiving updates.
  void step();

  void set_learning_rate(float lr) { config_.learning_rate = lr; }
  float learning_rate() const { return config_.learning_rate; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
};

// Piecewise-constant schedule: lr = base * decay^k after the k-th milestone.
class StepLrSchedule {
 public:
  StepLrSchedule(float base_lr, std::vector<int> milestone_epochs,
                 float decay = 0.1f);

  float lr_at_epoch(int epoch) const;

  // The paper's schedule: three decays of 10x spread uniformly across
  // `total_epochs`, starting from base_lr.
  static StepLrSchedule paper_schedule(float base_lr, int total_epochs);

 private:
  float base_lr_;
  std::vector<int> milestones_;
  float decay_;
};

}  // namespace con::nn
