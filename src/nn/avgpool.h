// Average pooling over NCHW batches (LeNet5's original subsampling layer
// used averaging; provided alongside MaxPool2d for architecture fidelity).
#pragma once

#include "nn/layer.h"

namespace con::nn {

class AvgPool2d : public Layer {
 public:
  AvgPool2d(tensor::Index window, tensor::Index stride,
            std::string layer_name = "avgpool");

  Tensor forward(const Tensor& x, bool train, TapeSlot& slot) const override;
  Tensor backward(const Tensor& grad_out, TapeSlot& slot) const override;
  std::string name() const override { return name_; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<AvgPool2d>(window_, stride_, name_);
  }

 private:
  tensor::Index window_;
  tensor::Index stride_;
  std::string name_;
};

}  // namespace con::nn
