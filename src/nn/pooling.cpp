#include "nn/pooling.h"

#include <limits>
#include <stdexcept>

namespace con::nn {

using tensor::Index;

MaxPool2d::MaxPool2d(Index window, Index stride, std::string layer_name)
    : window_(window), stride_(stride), name_(std::move(layer_name)) {
  if (window <= 0 || stride <= 0) {
    throw std::invalid_argument(name_ + ": invalid pooling spec");
  }
}

Tensor MaxPool2d::forward(const Tensor& x, bool /*train*/,
                          TapeSlot& slot) const {
  if (x.rank() != 4) {
    throw std::invalid_argument(name_ + ": expected NCHW input, got " +
                                x.shape().to_string());
  }
  const Index n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const Index oh = (h - window_) / stride_ + 1;
  const Index ow = (w - window_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument(name_ + ": input too small for window");
  }
  slot.in_shape = x.shape();
  Tensor y({n, c, oh, ow});
  // Flat input index of the max element for every output element.
  slot.indices.assign(static_cast<std::size_t>(y.numel()), 0);
  const float* in = x.data();
  float* out = y.data();
  Index o = 0;
  for (Index i = 0; i < n; ++i) {
    for (Index ch = 0; ch < c; ++ch) {
      const float* plane = in + (i * c + ch) * h * w;
      const Index plane_base = (i * c + ch) * h * w;
      for (Index py = 0; py < oh; ++py) {
        for (Index px = 0; px < ow; ++px, ++o) {
          float best = -std::numeric_limits<float>::infinity();
          Index best_idx = 0;
          for (Index dy = 0; dy < window_; ++dy) {
            const Index yy = py * stride_ + dy;
            for (Index dx = 0; dx < window_; ++dx) {
              const Index xx = px * stride_ + dx;
              const float v = plane[yy * w + xx];
              if (v > best) {
                best = v;
                best_idx = plane_base + yy * w + xx;
              }
            }
          }
          out[o] = best;
          slot.indices[static_cast<std::size_t>(o)] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out, TapeSlot& slot) const {
  if (static_cast<std::size_t>(grad_out.numel()) != slot.indices.size()) {
    throw std::invalid_argument(name_ + ": grad size mismatch");
  }
  Tensor gx(slot.in_shape);
  float* g = gx.data();
  const float* go = grad_out.data();
  for (std::size_t i = 0; i < slot.indices.size(); ++i) {
    g[slot.indices[i]] += go[i];
  }
  return gx;
}

}  // namespace con::nn
