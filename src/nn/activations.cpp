#include "nn/activations.h"

#include <cmath>
#include <stdexcept>

namespace con::nn {

using tensor::Index;

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  cached_input_ = x;
  Tensor y = x;
  for (float& v : y.flat()) v = v > 0.0f ? v : 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (grad_out.shape() != cached_input_.shape()) {
    throw std::invalid_argument(name_ + ": grad shape mismatch");
  }
  Tensor gx = grad_out;
  const float* in = cached_input_.data();
  float* g = gx.data();
  const Index n = gx.numel();
  for (Index i = 0; i < n; ++i) {
    if (in[i] <= 0.0f) g[i] = 0.0f;
  }
  return gx;
}

Tensor Tanh::forward(const Tensor& x, bool /*train*/) {
  Tensor y = x;
  for (float& v : y.flat()) v = std::tanh(v);
  cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  if (grad_out.shape() != cached_output_.shape()) {
    throw std::invalid_argument(name_ + ": grad shape mismatch");
  }
  Tensor gx = grad_out;
  const float* y = cached_output_.data();
  float* g = gx.data();
  const Index n = gx.numel();
  for (Index i = 0; i < n; ++i) g[i] *= 1.0f - y[i] * y[i];
  return gx;
}

}  // namespace con::nn
