#include "nn/activations.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace con::nn {

using tensor::Index;

Tensor ReLU::forward(const Tensor& x, bool /*train*/, TapeSlot& slot) const {
  slot.input = x;
  return tensor::relu(x);
}

Tensor ReLU::backward(const Tensor& grad_out, TapeSlot& slot) const {
  if (grad_out.shape() != slot.input.shape()) {
    throw std::invalid_argument(name_ + ": grad shape mismatch");
  }
  Tensor gx = grad_out;
  tensor::relu_backward_inplace(gx, slot.input);
  return gx;
}

Tensor Tanh::forward(const Tensor& x, bool /*train*/, TapeSlot& slot) const {
  Tensor y = x;
  for (float& v : y.flat()) v = std::tanh(v);
  slot.output = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out, TapeSlot& slot) const {
  if (grad_out.shape() != slot.output.shape()) {
    throw std::invalid_argument(name_ + ": grad shape mismatch");
  }
  Tensor gx = grad_out;
  const float* y = slot.output.data();
  float* g = gx.data();
  const Index n = gx.numel();
  for (Index i = 0; i < n; ++i) g[i] *= 1.0f - y[i] * y[i];
  return gx;
}

}  // namespace con::nn
