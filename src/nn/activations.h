// Pointwise activation layers.
#pragma once

#include "nn/layer.h"

namespace con::nn {

class ReLU : public Layer {
 public:
  explicit ReLU(std::string layer_name = "relu") : name_(std::move(layer_name)) {}

  Tensor forward(const Tensor& x, bool train, TapeSlot& slot) const override;
  Tensor backward(const Tensor& grad_out, TapeSlot& slot) const override;
  std::string name() const override { return name_; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>(name_);
  }

 private:
  std::string name_;
};

// tanh activation — LeNet5's classic nonlinearity is kept available even
// though the study's models use ReLU, so alternative architectures can be
// expressed.
class Tanh : public Layer {
 public:
  explicit Tanh(std::string layer_name = "tanh") : name_(std::move(layer_name)) {}

  Tensor forward(const Tensor& x, bool train, TapeSlot& slot) const override;
  Tensor backward(const Tensor& grad_out, TapeSlot& slot) const override;
  std::string name() const override { return name_; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Tanh>(name_);
  }

 private:
  std::string name_;
};

}  // namespace con::nn
