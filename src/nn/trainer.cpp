#include "nn/trainer.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "nn/loss.h"
#include "nn/tape.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/threadpool.h"

namespace con::nn {

using tensor::Index;
using tensor::Tensor;

namespace {

// Gather rows `idx[lo..hi)` of the dataset into a contiguous batch.
Tensor gather_batch(const Tensor& images, const std::vector<Index>& order,
                    std::size_t lo, std::size_t hi) {
  std::vector<Index> dims = images.shape().dims();
  dims[0] = static_cast<Index>(hi - lo);
  Tensor batch{tensor::Shape{std::move(dims)}};
  for (std::size_t i = lo; i < hi; ++i) {
    tensor::set_batch(batch, static_cast<Index>(i - lo),
                      tensor::slice_batch(images, order[i]));
  }
  return batch;
}

std::vector<int> gather_labels(const std::vector<int>& labels,
                               const std::vector<Index>& order, std::size_t lo,
                               std::size_t hi) {
  std::vector<int> out;
  out.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    out.push_back(labels[static_cast<std::size_t>(order[i])]);
  }
  return out;
}

void check_dataset(const Tensor& images, const std::vector<int>& labels) {
  if (images.rank() < 2) {
    throw std::invalid_argument("train: images must be batched (rank >= 2)");
  }
  if (static_cast<std::size_t>(images.dim(0)) != labels.size()) {
    throw std::invalid_argument("train: image/label count mismatch");
  }
  if (labels.empty()) throw std::invalid_argument("train: empty dataset");
}

}  // namespace

TrainStats train_classifier(Sequential& model, const Tensor& images,
                            const std::vector<int>& labels,
                            const TrainConfig& config,
                            const PostStepHook& post_step,
                            const PostEpochHook& post_epoch) {
  check_dataset(images, labels);
  const Index n = images.dim(0);

  Sgd optimizer(model.parameters(),
                SgdConfig{.learning_rate = config.base_lr,
                          .momentum = config.momentum,
                          .weight_decay = config.weight_decay});
  StepLrSchedule schedule =
      StepLrSchedule::paper_schedule(config.base_lr, config.epochs);

  con::util::Rng rng(config.shuffle_seed);
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});

  TrainStats stats;
  int global_step = 0;
  // One tape for the whole loop: slot storage is recycled across steps.
  ForwardTape tape(/*accumulate_param_grads=*/true);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.use_paper_lr_schedule) {
      optimizer.set_learning_rate(schedule.lr_at_epoch(epoch));
    }
    // Fisher-Yates shuffle from the experiment-seeded stream.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    double epoch_loss = 0.0;
    int epoch_batches = 0;
    for (std::size_t lo = 0; lo < order.size();
         lo += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t hi =
          std::min(order.size(), lo + static_cast<std::size_t>(config.batch_size));
      Tensor batch = gather_batch(images, order, lo, hi);
      std::vector<int> batch_labels = gather_labels(labels, order, lo, hi);

      model.zero_grad();
      Tensor logits = model.forward(batch, /*train=*/true, tape);
      LossResult loss = softmax_cross_entropy(logits, batch_labels);
      model.backward(loss.grad_logits, tape);
      optimizer.step();

      epoch_loss += loss.loss;
      ++epoch_batches;
      ++global_step;
      if (config.log_every_steps > 0 &&
          global_step % config.log_every_steps == 0) {
        con::util::log_info("%s epoch %d step %d loss %.4f",
                            model.name().c_str(), epoch, global_step,
                            loss.loss);
      }
      if (post_step) {
        post_step(StepContext{.epoch = epoch,
                              .step_in_epoch = epoch_batches - 1,
                              .global_step = global_step,
                              .loss = loss.loss});
      }
    }
    stats.epoch_losses.push_back(
        static_cast<float>(epoch_loss / std::max(1, epoch_batches)));
    if (post_epoch) post_epoch(epoch);
  }
  stats.steps = global_step;
  return stats;
}

std::vector<int> predict(const Sequential& model, const Tensor& images,
                         int batch_size) {
  const Index n = images.dim(0);
  std::vector<int> preds(static_cast<std::size_t>(n));
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  const std::size_t num_batches = static_cast<std::size_t>(
      (n + batch_size - 1) / batch_size);
  // Eval-mode forward on a shared model is thread-safe (see nn/layer.h);
  // every batch writes only its own slots of `preds`.
  util::parallel_for(0, num_batches, [&](std::size_t b) {
    const Index lo = static_cast<Index>(b) * batch_size;
    const Index hi = std::min(n, lo + batch_size);
    Tensor batch = gather_batch(images, order, static_cast<std::size_t>(lo),
                                static_cast<std::size_t>(hi));
    ForwardTape tape(/*accumulate_param_grads=*/false);
    Tensor logits = model.forward(batch, /*train=*/false, tape);
    for (Index i = lo; i < hi; ++i) {
      preds[static_cast<std::size_t>(i)] =
          static_cast<int>(tensor::argmax_row(logits, i - lo));
    }
  });
  return preds;
}

double evaluate_accuracy(const Sequential& model, const Tensor& images,
                         const std::vector<int>& labels, int batch_size) {
  check_dataset(images, labels);
  std::vector<int> preds = predict(model, images, batch_size);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double evaluate_loss(const Sequential& model, const Tensor& images,
                     const std::vector<int>& labels, int batch_size) {
  check_dataset(images, labels);
  const Index n = images.dim(0);
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  const std::size_t num_batches = static_cast<std::size_t>(
      (n + batch_size - 1) / batch_size);
  std::vector<double> partial(num_batches, 0.0);
  util::parallel_for(0, num_batches, [&](std::size_t b) {
    const Index lo = static_cast<Index>(b) * batch_size;
    const Index hi = std::min(n, lo + batch_size);
    Tensor batch = gather_batch(images, order, static_cast<std::size_t>(lo),
                                static_cast<std::size_t>(hi));
    std::vector<int> batch_labels(labels.begin() + lo, labels.begin() + hi);
    ForwardTape tape(/*accumulate_param_grads=*/false);
    Tensor logits = model.forward(batch, /*train=*/false, tape);
    LossResult loss = softmax_cross_entropy(logits, batch_labels);
    partial[b] = static_cast<double>(loss.loss) * static_cast<double>(hi - lo);
  });
  // Reduce in fixed batch order so the sum is thread-count invariant.
  double total = 0.0;
  for (double p : partial) total += p;
  return total / static_cast<double>(n);
}

}  // namespace con::nn
