// Mini-batch SGD training loop with the paper's LR schedule and a post-step
// hook used by the compression library (mask updates for dynamic network
// surgery happen between optimizer steps).
#pragma once

#include <functional>
#include <vector>

#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace con::nn {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 32;
  float base_lr = 0.01f;  // paper: schedules start from 0.01
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  std::uint64_t shuffle_seed = 0x7ea1ULL;
  bool use_paper_lr_schedule = true;
  int log_every_steps = 0;  // 0 = silent
};

struct TrainStats {
  std::vector<float> epoch_losses;   // mean loss per epoch
  int steps = 0;
};

struct StepContext {
  int epoch = 0;
  int step_in_epoch = 0;
  int global_step = 0;
  float loss = 0.0f;
};

using PostStepHook = std::function<void(const StepContext&)>;
using PostEpochHook = std::function<void(int epoch)>;

// Trains `model` on (images [N,...], labels) for config.epochs.
TrainStats train_classifier(Sequential& model, const Tensor& images,
                            const std::vector<int>& labels,
                            const TrainConfig& config,
                            const PostStepHook& post_step = {},
                            const PostEpochHook& post_epoch = {});

// Top-1 accuracy of `model` on (images, labels), evaluated in eval mode.
// Batches are evaluated in parallel over the global thread pool; results
// are written to per-sample slots, so the value is thread-count invariant.
double evaluate_accuracy(const Sequential& model, const Tensor& images,
                         const std::vector<int>& labels, int batch_size = 64);

// Per-sample predicted classes (parallel over batches, deterministic).
std::vector<int> predict(const Sequential& model, const Tensor& images,
                         int batch_size = 64);

// Mean cross-entropy loss on a dataset, eval mode (parallel over batches;
// partial sums are reduced in fixed batch order, so the value is
// thread-count invariant).
double evaluate_loss(const Sequential& model, const Tensor& images,
                     const std::vector<int>& labels, int batch_size = 64);

}  // namespace con::nn
