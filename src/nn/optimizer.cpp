#include "nn/optimizer.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace con::nn {

using tensor::Index;

Sgd::Sgd(std::vector<Parameter*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& vel = velocity_[i];
    const Index n = p.value.numel();
    if (p.grad.numel() != n) {
      throw std::logic_error("Sgd: grad size mismatch for " + p.name);
    }
    const bool gated = !p.grad_gate.empty();
    if (gated && p.grad_gate.numel() != n) {
      throw std::logic_error("Sgd: grad_gate size mismatch for " + p.name);
    }
    float* w = p.value.data();
    const float* g = p.grad.data();
    const float* gate = gated ? p.grad_gate.data() : nullptr;
    float* v = vel.data();
    const float lr = config_.learning_rate;
    const float mu = config_.momentum;
    const float wd = config_.weight_decay;
    for (Index j = 0; j < n; ++j) {
      float gj = g[j];
      if (gate) gj *= gate[j];
      if (wd != 0.0f) gj += wd * w[j];
      v[j] = mu * v[j] + gj;
      w[j] -= lr * v[j];
    }
    // In-place write: invalidate any packed-weight panels built from the
    // old values (nn/packed_weights.h).
    p.bump_version();
  }
}

StepLrSchedule::StepLrSchedule(float base_lr, std::vector<int> milestone_epochs,
                               float decay)
    : base_lr_(base_lr), milestones_(std::move(milestone_epochs)),
      decay_(decay) {
  if (base_lr <= 0.0f) throw std::invalid_argument("base_lr must be positive");
  for (std::size_t i = 1; i < milestones_.size(); ++i) {
    if (milestones_[i] <= milestones_[i - 1]) {
      throw std::invalid_argument("milestones must be strictly increasing");
    }
  }
}

float StepLrSchedule::lr_at_epoch(int epoch) const {
  float lr = base_lr_;
  for (int m : milestones_) {
    if (epoch >= m) lr *= decay_;
  }
  return lr;
}

StepLrSchedule StepLrSchedule::paper_schedule(float base_lr, int total_epochs) {
  // Three decays at 1/4, 2/4, 3/4 of training (guarding tiny runs where the
  // quarters would collide).
  std::vector<int> milestones;
  for (int k = 1; k <= 3; ++k) {
    int m = total_epochs * k / 4;
    if (m <= 0) m = k;
    if (!milestones.empty() && m <= milestones.back()) m = milestones.back() + 1;
    milestones.push_back(m);
  }
  return StepLrSchedule(base_lr, std::move(milestones), 0.1f);
}

}  // namespace con::nn
