// 2-D convolution over NCHW batches, implemented via im2col + matmul.
#pragma once

#include "nn/layer.h"
#include "nn/packed_weights.h"
#include "obs/metrics.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace con::nn {

struct Conv2dSpec {
  tensor::Index in_channels = 0;
  tensor::Index out_channels = 0;
  tensor::Index kernel = 0;  // square kernels only, as in LeNet5/CifarNet
  tensor::Index stride = 1;
  tensor::Index padding = 0;
};

class Conv2d : public Layer {
 public:
  Conv2d(const Conv2dSpec& spec, con::util::Rng& rng,
         std::string layer_name = "conv");

  Tensor forward(const Tensor& x, bool train, TapeSlot& slot) const override;
  Tensor backward(const Tensor& grad_out, TapeSlot& slot) const override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return name_; }
  std::unique_ptr<Layer> clone() const override;

  // Deployed-integer forward (inference only, no tape): quantises x to the
  // key's activation grid, lowers the codes via int8 im2col (padding is
  // code 0), multiplies against cached packed weight-code panels with
  // int32 accumulators, and requantises — bit-identical to the
  // compress::integer_exec oracle for any --threads and any CON_KERNEL.
  Tensor forward_int8(const Tensor& x, const Int8FormatKey& key) const;

  const Conv2dSpec& spec() const { return spec_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Conv2d(const Conv2d&) = default;

  Conv2dSpec spec_;
  std::string name_;
  // weight stored as [out_channels, in_channels * k * k] for the matmul.
  Parameter weight_;
  Parameter bias_;
  // Packed effective-weight panels, rebuilt when weight_'s fingerprint
  // changes (internally mutable: packing is not logical layer state).
  PackedWeightsCache cache_;
  // Per-layer wall-time distributions ("<name>.forward_s" / ".backward_s")
  // plus log2-bucketed latency histograms (".forward_ns" / ".backward_ns").
  mutable obs::LazyDist fwd_time_;
  mutable obs::LazyDist bwd_time_;
  mutable obs::LazyHist fwd_hist_;
  mutable obs::LazyHist bwd_hist_;
};

}  // namespace con::nn
