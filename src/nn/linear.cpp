#include "nn/linear.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/obs.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/random.h"

namespace con::nn {

using tensor::Index;

namespace {

// y = x Wᵀ wants W packed row-major (rows = out); dx = g W wants W as the
// right operand of an NN product, i.e. packed along columns (rows = in).
void pack_linear(PackedWeights& pw) {
  pw.fwd = tensor::gemm::pack_rowmajor(pw.effective, tensor::gemm::kStripB);
  pw.bwd = tensor::gemm::pack_colmajor(pw.effective, tensor::gemm::kStripB);
}

// y = x·Wᵀ puts the weight codes on the right: B panels, rows = out.
void pack_linear_int8(PackedInt8Weights& pw, const std::int8_t* codes,
                      Index rows, Index depth) {
  pw.b = tensor::gemm::pack_int8_b(codes, rows, depth);
}

}  // namespace

Linear::Linear(Index in_features, Index out_features, con::util::Rng& rng,
               std::string layer_name)
    : in_features_(in_features),
      out_features_(out_features),
      name_(std::move(layer_name)),
      weight_(name_ + ".weight", Tensor({out_features, in_features})),
      bias_(name_ + ".bias", Tensor({out_features})) {
  tensor::fill_kaiming_normal(weight_.value, rng, in_features);
  bias_.compressible = false;
}

Tensor Linear::forward(const Tensor& x, bool train, TapeSlot& slot) const {
  if (x.rank() != 2 || x.dim(1) != in_features_) {
    throw std::invalid_argument(name_ + ": expected input [N, " +
                                std::to_string(in_features_) + "], got " +
                                x.shape().to_string());
  }
  obs::Span span(name_, "fwd");
  obs::ScopedTimer timer(fwd_time_.get(name_ + ".forward_s"),
                         fwd_hist_.get(name_ + ".forward_ns"));
  slot.input = x;
  slot.packed = cache_.get(weight_, &pack_linear);
  // The optimizer reads grad_gate at step() time; only a training forward
  // (single-threaded by contract) may refresh it.
  if (train) weight_.grad_gate = slot.packed->gate;
  // y[N, out] = x[N, in] * W[out, in]^T
  Tensor y = tensor::gemm::matmul_nt(x, slot.packed->fwd);
  tensor::bias_add_inplace(y, bias_.value);
  return y;
}

Tensor Linear::forward_int8(const Tensor& x, const Int8FormatKey& key) const {
  if (x.rank() != 2 || x.dim(1) != in_features_) {
    throw std::invalid_argument(name_ + ": expected input [N, " +
                                std::to_string(in_features_) + "], got " +
                                x.shape().to_string());
  }
  obs::Span span(name_, "int8");
  const Index n = x.dim(0);
  const auto pw = cache_.get_int8(weight_, bias_, key, &pack_linear_int8);
  // Input codes, packed as the left operand.
  std::vector<std::int8_t> xcodes(static_cast<std::size_t>(x.numel()));
  tensor::gemm::quantize_codes(xcodes.data(), x.data(), pw->act_inv_step,
                               pw->act_lo, pw->act_hi, x.numel());
  const tensor::gemm::PackedInt8A pa =
      tensor::gemm::pack_int8_a(xcodes.data(), n, in_features_);
  // acc[N, out] in int32, then requantise with the per-column bias.
  std::vector<std::int32_t> acc(
      static_cast<std::size_t>(n * out_features_));
  tensor::gemm::Int8BSource bs{.packed = &pw->b};
  tensor::gemm::matmul_int8(pa, bs, out_features_, acc.data());
  Tensor y({n, out_features_});
  tensor::gemm::requantize_col_bias(y.data(), acc.data(),
                                    pw->bias_codes.data(), pw->shift,
                                    pw->out_lo, pw->out_hi, pw->out_scale, n,
                                    out_features_);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out, TapeSlot& slot) const {
  if (grad_out.rank() != 2 || grad_out.dim(1) != out_features_ ||
      grad_out.dim(0) != slot.input.dim(0)) {
    throw std::invalid_argument(name_ + ": bad grad_out shape " +
                                grad_out.shape().to_string());
  }
  obs::Span span(name_, "bwd");
  obs::ScopedTimer timer(bwd_time_.get(name_ + ".backward_s"),
                         bwd_hist_.get(name_ + ".backward_ns"));
  if (slot.accumulate_param_grads) {
    // dW[out, in] = grad_out[N, out]^T * x[N, in]
    Tensor dw = tensor::matmul_tn(grad_out, slot.input);
    tensor::add_inplace(weight_.grad, dw);
    // db[out] = column sums of grad_out
    tensor::column_sums_add_inplace(bias_.grad, grad_out);
  }
  // dx[N, in] = grad_out[N, out] * W[out, in]
  return tensor::gemm::matmul_nn(grad_out, slot.packed->bwd);
}

std::unique_ptr<Layer> Linear::clone() const {
  return std::unique_ptr<Layer>(new Linear(*this));
}

}  // namespace con::nn
