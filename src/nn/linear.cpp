#include "nn/linear.h"

#include <stdexcept>

#include "obs/obs.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/random.h"

namespace con::nn {

using tensor::Index;

namespace {

// y = x Wᵀ wants W packed row-major (rows = out); dx = g W wants W as the
// right operand of an NN product, i.e. packed along columns (rows = in).
void pack_linear(PackedWeights& pw) {
  pw.fwd = tensor::gemm::pack_rowmajor(pw.effective, tensor::gemm::kStripB);
  pw.bwd = tensor::gemm::pack_colmajor(pw.effective, tensor::gemm::kStripB);
}

}  // namespace

Linear::Linear(Index in_features, Index out_features, con::util::Rng& rng,
               std::string layer_name)
    : in_features_(in_features),
      out_features_(out_features),
      name_(std::move(layer_name)),
      weight_(name_ + ".weight", Tensor({out_features, in_features})),
      bias_(name_ + ".bias", Tensor({out_features})) {
  tensor::fill_kaiming_normal(weight_.value, rng, in_features);
  bias_.compressible = false;
}

Tensor Linear::forward(const Tensor& x, bool train, TapeSlot& slot) const {
  if (x.rank() != 2 || x.dim(1) != in_features_) {
    throw std::invalid_argument(name_ + ": expected input [N, " +
                                std::to_string(in_features_) + "], got " +
                                x.shape().to_string());
  }
  obs::Span span(name_, "fwd");
  obs::ScopedTimer timer(fwd_time_.get(name_ + ".forward_s"));
  slot.input = x;
  slot.packed = cache_.get(weight_, &pack_linear);
  // The optimizer reads grad_gate at step() time; only a training forward
  // (single-threaded by contract) may refresh it.
  if (train) weight_.grad_gate = slot.packed->gate;
  // y[N, out] = x[N, in] * W[out, in]^T
  Tensor y = tensor::gemm::matmul_nt(x, slot.packed->fwd);
  tensor::bias_add_inplace(y, bias_.value);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out, TapeSlot& slot) const {
  if (grad_out.rank() != 2 || grad_out.dim(1) != out_features_ ||
      grad_out.dim(0) != slot.input.dim(0)) {
    throw std::invalid_argument(name_ + ": bad grad_out shape " +
                                grad_out.shape().to_string());
  }
  obs::Span span(name_, "bwd");
  obs::ScopedTimer timer(bwd_time_.get(name_ + ".backward_s"));
  if (slot.accumulate_param_grads) {
    // dW[out, in] = grad_out[N, out]^T * x[N, in]
    Tensor dw = tensor::matmul_tn(grad_out, slot.input);
    tensor::add_inplace(weight_.grad, dw);
    // db[out] = column sums of grad_out
    tensor::column_sums_add_inplace(bias_.grad, grad_out);
  }
  // dx[N, in] = grad_out[N, out] * W[out, in]
  return tensor::gemm::matmul_nn(grad_out, slot.packed->bwd);
}

std::unique_ptr<Layer> Linear::clone() const {
  return std::unique_ptr<Layer>(new Linear(*this));
}

}  // namespace con::nn
