#include "nn/avgpool.h"

#include <stdexcept>

namespace con::nn {

using tensor::Index;

AvgPool2d::AvgPool2d(Index window, Index stride, std::string layer_name)
    : window_(window), stride_(stride), name_(std::move(layer_name)) {
  if (window <= 0 || stride <= 0) {
    throw std::invalid_argument(name_ + ": invalid pooling spec");
  }
}

Tensor AvgPool2d::forward(const Tensor& x, bool /*train*/,
                          TapeSlot& slot) const {
  if (x.rank() != 4) {
    throw std::invalid_argument(name_ + ": expected NCHW input");
  }
  const Index n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const Index oh = (h - window_) / stride_ + 1;
  const Index ow = (w - window_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument(name_ + ": input too small for window");
  }
  slot.in_shape = x.shape();
  Tensor y({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  const float* in = x.data();
  float* out = y.data();
  Index o = 0;
  for (Index i = 0; i < n; ++i) {
    for (Index ch = 0; ch < c; ++ch) {
      const float* plane = in + (i * c + ch) * h * w;
      for (Index py = 0; py < oh; ++py) {
        for (Index px = 0; px < ow; ++px, ++o) {
          double acc = 0.0;
          for (Index dy = 0; dy < window_; ++dy) {
            const Index yy = py * stride_ + dy;
            for (Index dx = 0; dx < window_; ++dx) {
              acc += plane[yy * w + px * stride_ + dx];
            }
          }
          out[o] = static_cast<float>(acc) * inv;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out, TapeSlot& slot) const {
  const Index n = slot.in_shape.dim(0), c = slot.in_shape.dim(1),
              h = slot.in_shape.dim(2), w = slot.in_shape.dim(3);
  const Index oh = (h - window_) / stride_ + 1;
  const Index ow = (w - window_) / stride_ + 1;
  if (grad_out.numel() != n * c * oh * ow) {
    throw std::invalid_argument(name_ + ": grad size mismatch");
  }
  Tensor gx(slot.in_shape);
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  const float* go = grad_out.data();
  float* g = gx.data();
  Index o = 0;
  for (Index i = 0; i < n; ++i) {
    for (Index ch = 0; ch < c; ++ch) {
      float* plane = g + (i * c + ch) * h * w;
      for (Index py = 0; py < oh; ++py) {
        for (Index px = 0; px < ow; ++px, ++o) {
          const float share = go[o] * inv;
          for (Index dy = 0; dy < window_; ++dy) {
            const Index yy = py * stride_ + dy;
            for (Index dx = 0; dx < window_; ++dx) {
              plane[yy * w + px * stride_ + dx] += share;
            }
          }
        }
      }
    }
  }
  return gx;
}

}  // namespace con::nn
