// Max pooling over NCHW batches.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace con::nn {

class MaxPool2d : public Layer {
 public:
  MaxPool2d(tensor::Index window, tensor::Index stride,
            std::string layer_name = "maxpool");

  Tensor forward(const Tensor& x, bool train, TapeSlot& slot) const override;
  Tensor backward(const Tensor& grad_out, TapeSlot& slot) const override;
  std::string name() const override { return name_; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2d>(window_, stride_, name_);
  }

 private:
  tensor::Index window_;
  tensor::Index stride_;
  std::string name_;
};

}  // namespace con::nn
