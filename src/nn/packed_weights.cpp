#include "nn/packed_weights.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"

namespace con::nn {

std::shared_ptr<const PackedWeights> PackedWeightsCache::get(
    const Parameter& p, BuildFn build) const {
  const float* mask_data = p.mask.empty() ? nullptr : p.mask.data();
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != nullptr && current_->version == p.version &&
      current_->value_data == p.value.data() &&
      current_->mask_data == mask_data &&
      current_->transform == p.transform.get()) {
    static obs::Counter& hits = obs::counter("packed_cache.hit");
    hits.add(1);
    return current_;
  }
  static obs::Counter& misses = obs::counter("packed_cache.miss");
  misses.add(1);
  if (current_ != nullptr) {
    static obs::Counter& repacks = obs::counter("packed_cache.repack");
    repacks.add(1);
  }
  // Rebuild under the lock: redundant packing by racing threads would be
  // harmless but wasteful, and rebuilds are rare (weights are frozen for
  // the whole of an attack run).
  auto pw = std::make_shared<PackedWeights>();
  pw->version = p.version;
  pw->value_data = p.value.data();
  pw->mask_data = mask_data;
  pw->transform = p.transform.get();
  pw->effective = p.effective(pw->gate);
  build(*pw);
  current_ = pw;
  return current_;
}

std::shared_ptr<const PackedInt8Weights> PackedWeightsCache::get_int8(
    const Parameter& w, const Parameter& bias, const Int8FormatKey& key,
    BuildInt8Fn build) const {
  const float* mask_data = w.mask.empty() ? nullptr : w.mask.data();
  std::lock_guard<std::mutex> lock(mu_);
  if (int8_current_ != nullptr && int8_current_->version == w.version &&
      int8_current_->value_data == w.value.data() &&
      int8_current_->mask_data == mask_data &&
      int8_current_->transform == w.transform.get() &&
      int8_current_->bias_version == bias.version &&
      int8_current_->bias_data == bias.value.data() &&
      int8_current_->key == key) {
    static obs::Counter& hits = obs::counter("packed_cache.int8.hit");
    hits.add(1);
    return int8_current_;
  }
  static obs::Counter& misses = obs::counter("packed_cache.int8.miss");
  misses.add(1);
  if (int8_current_ != nullptr) {
    static obs::Counter& repacks = obs::counter("packed_cache.int8.repack");
    repacks.add(1);
  }
  if (key.weight_total_bits < 2 || key.weight_total_bits > 8 ||
      key.act_total_bits < 2 || key.act_total_bits > 8) {
    throw std::invalid_argument(
        "get_int8: int8 backend requires 2..8-bit formats, got weight " +
        std::to_string(key.weight_total_bits) + " / activation " +
        std::to_string(key.act_total_bits) + " bits");
  }
  const int wfrac = key.weight_total_bits - key.weight_integer_bits;
  const int afrac = key.act_total_bits - key.act_integer_bits;
  if (wfrac < 0 || afrac < 0) {
    throw std::invalid_argument(
        "get_int8: integer bits exceed total bits in the format key");
  }

  auto pw = std::make_shared<PackedInt8Weights>();
  pw->version = w.version;
  pw->value_data = w.value.data();
  pw->mask_data = mask_data;
  pw->transform = w.transform.get();
  pw->bias_version = bias.version;
  pw->bias_data = bias.value.data();
  pw->key = key;

  Tensor gate;
  const Tensor eff = w.effective(gate);
  if (eff.rank() != 2) {
    throw std::invalid_argument(
        "get_int8: expected a [rows, depth] weight matrix, got " +
        eff.shape().to_string());
  }
  const tensor::Index rows = eff.dim(0);
  const tensor::Index depth = eff.dim(1);

  // Quantise the effective weights to codes, re-validating the grid: the
  // transform already snapped them, so an off-grid value here means the
  // key does not describe the transform actually attached to `w`.
  const double sw = std::ldexp(1.0, -wfrac);
  const std::int64_t wlo = -(std::int64_t{1} << (key.weight_total_bits - 1));
  const std::int64_t whi =
      (std::int64_t{1} << (key.weight_total_bits - 1)) - 1;
  std::vector<std::int8_t> codes(static_cast<std::size_t>(eff.numel()));
  for (tensor::Index i = 0; i < eff.numel(); ++i) {
    const double code_f = static_cast<double>(eff[i]) / sw;
    const auto code = static_cast<std::int64_t>(std::nearbyint(code_f));
    if (std::fabs(code_f - static_cast<double>(code)) > 1e-6 || code < wlo ||
        code > whi) {
      throw std::invalid_argument(
          "get_int8: effective weight[" + std::to_string(i) + "] = " +
          std::to_string(eff[i]) + " is not a " +
          std::to_string(key.weight_total_bits) + "-bit code (step " +
          std::to_string(sw) +
          ") — the format key does not match the weight transform");
    }
    codes[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(code);
  }

  // Bias at accumulator scale, plus the int32 headroom proof: every code
  // magnitude is ≤ 2⁷, so |Σ w·x| ≤ depth·2¹⁴, and adding the bias must
  // still be representable. The kernels accumulate in int32 (dispatch.h);
  // past this bound the backend would silently wrap, so refuse loudly.
  const double acc_scale = sw * std::ldexp(1.0, -afrac);
  std::int64_t max_abs_bias = 0;
  pw->bias_codes.reserve(static_cast<std::size_t>(bias.value.numel()));
  for (tensor::Index i = 0; i < bias.value.numel(); ++i) {
    const auto code = static_cast<std::int64_t>(
        std::nearbyint(static_cast<double>(bias.value[i]) / acc_scale));
    max_abs_bias = std::max<std::int64_t>(max_abs_bias,
                                          code < 0 ? -code : code);
    pw->bias_codes.push_back(static_cast<std::int32_t>(code));
  }
  if (static_cast<std::int64_t>(depth) * 16384 + max_abs_bias >=
      (std::int64_t{1} << 31)) {
    throw std::invalid_argument(
        "get_int8: depth " + std::to_string(depth) +
        " with max |bias code| " + std::to_string(max_abs_bias) +
        " exceeds int32 accumulator headroom");
  }

  pw->shift = wfrac;
  pw->out_lo = -(std::int32_t{1} << (key.act_total_bits - 1));
  pw->out_hi = (std::int32_t{1} << (key.act_total_bits - 1)) - 1;
  pw->out_scale = static_cast<float>(std::ldexp(1.0, -afrac));
  pw->act_inv_step = static_cast<float>(std::ldexp(1.0, afrac));
  pw->act_lo = static_cast<float>(pw->out_lo * std::ldexp(1.0, -afrac));
  pw->act_hi = static_cast<float>(pw->out_hi * std::ldexp(1.0, -afrac));
  build(*pw, codes.data(), rows, depth);
  int8_current_ = pw;
  return int8_current_;
}

}  // namespace con::nn
