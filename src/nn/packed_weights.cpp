#include "nn/packed_weights.h"

#include "obs/metrics.h"

namespace con::nn {

std::shared_ptr<const PackedWeights> PackedWeightsCache::get(
    const Parameter& p, BuildFn build) const {
  const float* mask_data = p.mask.empty() ? nullptr : p.mask.data();
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != nullptr && current_->version == p.version &&
      current_->value_data == p.value.data() &&
      current_->mask_data == mask_data &&
      current_->transform == p.transform.get()) {
    static obs::Counter& hits = obs::counter("packed_cache.hit");
    hits.add(1);
    return current_;
  }
  static obs::Counter& misses = obs::counter("packed_cache.miss");
  misses.add(1);
  if (current_ != nullptr) {
    static obs::Counter& repacks = obs::counter("packed_cache.repack");
    repacks.add(1);
  }
  // Rebuild under the lock: redundant packing by racing threads would be
  // harmless but wasteful, and rebuilds are rare (weights are frozen for
  // the whole of an attack run).
  auto pw = std::make_shared<PackedWeights>();
  pw->version = p.version;
  pw->value_data = p.value.data();
  pw->mask_data = mask_data;
  pw->transform = p.transform.get();
  pw->effective = p.effective(pw->gate);
  build(*pw);
  current_ = pw;
  return current_;
}

}  // namespace con::nn
