// Sequential model: an ordered stack of layers with chained forward/backward.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace con::nn {

class Sequential {
 public:
  Sequential() = default;
  explicit Sequential(std::string model_name) : name_(std::move(model_name)) {}

  // Movable, not copyable (use clone() for deep copies).
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  // Insert a layer at position `index` (used by the quantisation pass to
  // interleave activation-quantisation layers).
  void insert(std::size_t index, std::unique_ptr<Layer> layer);

  Tensor forward(const Tensor& x, bool train = false);
  // Gradient of the loss w.r.t. the model input; parameter grads accumulate.
  Tensor backward(const Tensor& grad_logits);

  std::vector<Parameter*> parameters();
  void zero_grad();

  // Total number of weight/bias scalars (the paper quotes 431K for LeNet5,
  // 1.3M for CifarNet).
  tensor::Index num_parameters();
  // Overall density: non-zero fraction of effective (masked) compressible
  // weights. 1.0 for a dense model.
  double density();

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  Sequential clone() const;

  // Human-readable architecture summary.
  std::string summary();

 private:
  std::string name_ = "model";
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace con::nn
