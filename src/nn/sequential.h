// Sequential model: an ordered stack of layers with chained forward/backward.
//
// The model itself is immutable during execution: forward/backward are
// const and thread on a caller-owned ForwardTape, so any number of threads
// may run eval-mode forward + non-accumulating backward on one shared
// model concurrently (see nn/layer.h for the full contract). The
// tape-less forward/backward overloads are a single-threaded convenience
// backed by an internal scratch tape.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/tape.h"

namespace con::nn {

class Sequential {
 public:
  Sequential() = default;
  explicit Sequential(std::string model_name) : name_(std::move(model_name)) {}

  // Movable, not copyable (use clone() for deep copies).
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  // Insert a layer at position `index` (used by the quantisation pass to
  // interleave activation-quantisation layers).
  void insert(std::size_t index, std::unique_ptr<Layer> layer);

  // Reentrant execution: per-call state lives in `tape` (slot i belongs to
  // layer i), never in the layers. One forward supports any number of
  // backward calls against the same tape.
  Tensor forward(const Tensor& x, bool train, ForwardTape& tape) const;
  // Gradient of the loss w.r.t. the model input; parameter grads accumulate
  // iff tape.accumulate_param_grads().
  Tensor backward(const Tensor& grad_logits, ForwardTape& tape) const;

  // Single-threaded convenience overloads backed by an internal scratch
  // tape. NOT safe to call concurrently on a shared model.
  Tensor forward(const Tensor& x, bool train = false);
  Tensor backward(const Tensor& grad_logits);

  std::vector<Parameter*> parameters();
  std::vector<const Parameter*> parameters() const;
  void zero_grad();

  // Total number of weight/bias scalars (the paper quotes 431K for LeNet5,
  // 1.3M for CifarNet).
  tensor::Index num_parameters() const;
  // Overall density: non-zero fraction of effective (masked) compressible
  // weights. 1.0 for a dense model.
  double density() const;

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  Sequential clone() const;

  // Human-readable architecture summary.
  std::string summary() const;

 private:
  std::string name_ = "model";
  std::vector<std::unique_ptr<Layer>> layers_;
  // Backs the tape-less convenience overloads only.
  ForwardTape scratch_tape_;
};

}  // namespace con::nn
