// Shape-manipulation layers: Flatten and Dropout (regularization).
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace con::nn {

// [N, ...] -> [N, prod(...)]. Remembers the input shape for backward.
class Flatten : public Layer {
 public:
  explicit Flatten(std::string layer_name = "flatten")
      : name_(std::move(layer_name)) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(name_);
  }

 private:
  std::string name_;
  tensor::Shape cached_in_shape_;
};

// Inverted dropout: active only when train=true. The RNG is owned by the
// layer so cloned models have independent dropout streams but deterministic
// behaviour under a fixed seed.
class Dropout : public Layer {
 public:
  Dropout(double drop_probability, std::uint64_t seed,
          std::string layer_name = "dropout");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }
  std::unique_ptr<Layer> clone() const override;

 private:
  double p_;
  std::string name_;
  con::util::Rng rng_;
  Tensor cached_mask_;  // empty when last forward was eval-mode
};

}  // namespace con::nn
