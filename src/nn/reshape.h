// Shape-manipulation layers: Flatten and Dropout (regularization).
#pragma once

#include "nn/layer.h"
#include "util/rng.h"

namespace con::nn {

// [N, ...] -> [N, prod(...)]. Records the input shape on the tape for
// backward.
class Flatten : public Layer {
 public:
  explicit Flatten(std::string layer_name = "flatten")
      : name_(std::move(layer_name)) {}

  Tensor forward(const Tensor& x, bool train, TapeSlot& slot) const override;
  Tensor backward(const Tensor& grad_out, TapeSlot& slot) const override;
  std::string name() const override { return name_; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(name_);
  }

 private:
  std::string name_;
};

// Inverted dropout: active only when train=true. The RNG is owned by the
// layer so cloned models have independent dropout streams but deterministic
// behaviour under a fixed seed. It is `mutable` because only train-mode
// forwards (single-threaded by contract) draw from it; eval-mode forward is
// a no-op and thread-safe.
class Dropout : public Layer {
 public:
  Dropout(double drop_probability, std::uint64_t seed,
          std::string layer_name = "dropout");

  Tensor forward(const Tensor& x, bool train, TapeSlot& slot) const override;
  Tensor backward(const Tensor& grad_out, TapeSlot& slot) const override;
  std::string name() const override { return name_; }
  std::unique_ptr<Layer> clone() const override;

 private:
  double p_;
  std::string name_;
  // conlint:allow(layer-reentrancy): dropout draws only in train-mode forwards, which are single-threaded by contract
  mutable con::util::Rng rng_;
};

}  // namespace con::nn
