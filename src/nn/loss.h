// Softmax cross-entropy loss over logits.
//
// Attacks differentiate J(θ, X, y) with respect to X, so the loss exposes
// both the scalar loss and the gradient w.r.t. the logits; chaining that
// through Sequential::backward yields ∇ₓJ.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace con::nn {

using tensor::Tensor;

struct LossResult {
  float loss = 0.0f;            // mean over the batch
  Tensor grad_logits;           // [N, K], d(mean loss)/d logits
  Tensor probabilities;         // [N, K], softmax outputs
};

// logits: [N, K]; labels: N class indices in [0, K).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

// Numerically-stable row softmax of a [N, K] tensor.
Tensor softmax(const Tensor& logits);

}  // namespace con::nn
