// Batch normalization over NCHW feature maps.
//
// Not used by the paper's two networks, but a required piece of a usable
// CNN framework (and of most CifarNet-class models in the wild); provided
// so alternative architectures can be expressed and compressed.
#pragma once

#include "nn/layer.h"

namespace con::nn {

class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(tensor::Index channels, float momentum = 0.1f,
              float epsilon = 1e-5f, std::string layer_name = "bn");

  Tensor forward(const Tensor& x, bool train, TapeSlot& slot) const override;
  Tensor backward(const Tensor& grad_out, TapeSlot& slot) const override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::string name() const override { return name_; }
  std::unique_ptr<Layer> clone() const override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  BatchNorm2d(const BatchNorm2d&) = default;

  tensor::Index channels_;
  float momentum_;
  float epsilon_;
  std::string name_;
  Parameter gamma_;
  Parameter beta_;
  // Running statistics are logical model state but are only written by
  // train-mode forwards, which are single-threaded by contract; `mutable`
  // lets eval-mode forward stay const and thread-safe.
  mutable Tensor running_mean_;  // conlint:allow(layer-reentrancy): train-mode-only state, see comment above
  mutable Tensor running_var_;  // conlint:allow(layer-reentrancy): train-mode-only state, see comment above
};

}  // namespace con::nn
