// Fully-connected layer: y = x W^T + b, x: [N, in], W: [out, in], b: [out].
#pragma once

#include "nn/layer.h"
#include "nn/packed_weights.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace con::nn {

class Linear : public Layer {
 public:
  Linear(tensor::Index in_features, tensor::Index out_features,
         con::util::Rng& rng, std::string layer_name = "linear");

  Tensor forward(const Tensor& x, bool train, TapeSlot& slot) const override;
  Tensor backward(const Tensor& grad_out, TapeSlot& slot) const override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return name_; }
  std::unique_ptr<Layer> clone() const override;

  // Deployed-integer forward (inference only, no tape): quantises x to the
  // key's activation grid, multiplies int8 codes against cached packed
  // weight-code panels with int32 accumulators, and requantises with a
  // round-half-even shift — bit-identical to the compress::integer_exec
  // oracle for any --threads and any CON_KERNEL (tensor/gemm_int8.h).
  // Requires weight_'s transform to snap onto exactly the key's grid.
  Tensor forward_int8(const Tensor& x, const Int8FormatKey& key) const;

  tensor::Index in_features() const { return in_features_; }
  tensor::Index out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Linear(const Linear&) = default;

  tensor::Index in_features_;
  tensor::Index out_features_;
  std::string name_;
  Parameter weight_;
  Parameter bias_;
  // Packed effective-weight panels, rebuilt when weight_'s fingerprint
  // changes (internally mutable: packing is not logical layer state).
  PackedWeightsCache cache_;
  // Per-layer wall-time distributions ("<name>.forward_s" / ".backward_s")
  // plus log2-bucketed latency histograms (".forward_ns" / ".backward_ns").
  mutable obs::LazyDist fwd_time_;
  mutable obs::LazyDist bwd_time_;
  mutable obs::LazyHist fwd_hist_;
  mutable obs::LazyHist bwd_hist_;
};

}  // namespace con::nn
