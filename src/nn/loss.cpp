#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace con::nn {

using tensor::Index;

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax: expected [N, K] logits");
  }
  const Index n = logits.dim(0), k = logits.dim(1);
  Tensor probs(logits.shape());
  const float* in = logits.data();
  float* out = probs.data();
  for (Index i = 0; i < n; ++i) {
    const float* row = in + i * k;
    float* prow = out + i * k;
    float m = row[0];
    for (Index j = 1; j < k; ++j) m = std::max(m, row[j]);
    double denom = 0.0;
    for (Index j = 0; j < k; ++j) {
      prow[j] = std::exp(row[j] - m);
      denom += prow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (Index j = 0; j < k; ++j) prow[j] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_cross_entropy: expected [N, K]");
  }
  const Index n = logits.dim(0), k = logits.dim(1);
  if (static_cast<Index>(labels.size()) != n) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  LossResult result;
  result.probabilities = softmax(logits);
  result.grad_logits = result.probabilities;
  float* g = result.grad_logits.data();
  const float* p = result.probabilities.data();
  double loss_acc = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (Index i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= k) {
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    }
    // clamp to avoid log(0) on confidently-wrong predictions
    loss_acc -= std::log(std::max(p[i * k + y], 1e-12f));
    g[i * k + y] -= 1.0f;
  }
  for (Index i = 0; i < n * k; ++i) g[i] *= inv_n;
  result.loss = static_cast<float>(loss_acc / static_cast<double>(n));
  return result;
}

}  // namespace con::nn
