// Layer abstraction for feed-forward networks.
//
// Layers cache whatever forward state their backward pass needs; backward
// returns the gradient with respect to the layer input (this is what lets
// attacks compute ∇ₓJ by chaining backward all the way to the image) and
// accumulates parameter gradients into Parameter::grad.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace con::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  // `train` enables train-only behaviour (dropout); forward always caches
  // enough state for a subsequent backward, because attacks differentiate
  // through models in eval mode.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  // grad_out: gradient of the loss w.r.t. this layer's output. Returns the
  // gradient w.r.t. this layer's input; accumulates into parameter grads.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;

  // Deep copy, including parameter values, masks and transforms. Used to
  // derive compressed model variants from a trained baseline.
  virtual std::unique_ptr<Layer> clone() const = 0;
};

}  // namespace con::nn
