// Layer abstraction for feed-forward networks.
//
// Layers are reentrant: forward writes whatever state its backward pass
// needs into a caller-owned TapeSlot, and backward reads it back from the
// same slot. backward returns the gradient with respect to the layer input
// (this is what lets attacks compute ∇ₓJ by chaining backward all the way
// to the image); it accumulates parameter gradients into Parameter::grad
// only when slot.accumulate_param_grads is set.
//
// Thread-safety contract: eval-mode forward and backward (with
// accumulate_param_grads=false) are safe to run concurrently on one shared
// layer, each thread with its own slot. Train-mode forward mutates layer
// state (BatchNorm running stats, Dropout's RNG, Parameter::grad_gate) and
// is single-threaded by contract, as is any backward that accumulates
// parameter gradients.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "nn/tape.h"
#include "tensor/tensor.h"

namespace con::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  // `train` enables train-only behaviour (dropout, batch statistics);
  // forward always records enough state in `slot` for a subsequent
  // backward, because attacks differentiate through models in eval mode.
  virtual Tensor forward(const Tensor& x, bool train,
                         TapeSlot& slot) const = 0;

  // grad_out: gradient of the loss w.r.t. this layer's output. Returns the
  // gradient w.r.t. this layer's input; accumulates into parameter grads
  // when slot.accumulate_param_grads. A single forward supports any number
  // of backward calls against the same slot (DeepFool differentiates every
  // logit off one forward).
  virtual Tensor backward(const Tensor& grad_out, TapeSlot& slot) const = 0;

  virtual std::vector<Parameter*> parameters() { return {}; }

  virtual std::string name() const = 0;

  // Deep copy, including parameter values, masks and transforms. Used to
  // derive compressed model variants from a trained baseline.
  virtual std::unique_ptr<Layer> clone() const = 0;
};

}  // namespace con::nn
