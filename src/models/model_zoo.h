// The paper's two networks: LeNet5 (MNIST, 431K params) and CifarNet
// (CIFAR-10, ~1.3M params), plus reduced variants for fast test-scale runs.
#pragma once

#include <cstdint>

#include "nn/sequential.h"

namespace con::models {

// LeNet5 for 28x28x1 inputs (LeCun et al.):
//   conv 5x5x6 (pad 2) - relu - maxpool2 - conv 5x5x16 - relu - maxpool2
//   - fc 400->120 - relu - fc 120->84 - relu - fc 84->10
// Parameter count 61,706 in the classic form; the paper's 431K variant uses
// wider FC layers (historically LeNet5 sizes vary). We provide both: the
// default matches the paper's quoted 431K by widening the first FC layer.
nn::Sequential make_lenet5(std::uint64_t seed, bool paper_width = true);

// CifarNet for 32x32x3 inputs (Zhao et al. 2018 "Mayo" model family):
// a VGG-style stack sized to ~1.29M parameters:
//   conv3x3x32 - relu - conv3x3x32 - relu - pool
//   conv3x3x64 - relu - conv3x3x64 - relu - pool
//   fc 4096->256 - relu - dropout - fc 256->10
nn::Sequential make_cifarnet(std::uint64_t seed);

// Small variants used by unit/integration tests and CI-scale sweeps; same
// layer types, far fewer channels.
nn::Sequential make_lenet5_small(std::uint64_t seed);
nn::Sequential make_cifarnet_small(std::uint64_t seed);

// Look up a builder by name ("lenet5", "cifarnet", "lenet5-small",
// "cifarnet-small"); throws on unknown names.
nn::Sequential make_model(const std::string& name, std::uint64_t seed);

// Input geometry for a model name.
struct InputSpec {
  tensor::Index channels;
  tensor::Index height;
  tensor::Index width;
};
InputSpec input_spec(const std::string& name);

}  // namespace con::models
