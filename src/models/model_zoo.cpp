#include "models/model_zoo.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/reshape.h"
#include "util/rng.h"

namespace con::models {

using nn::Conv2d;
using nn::Conv2dSpec;
using nn::Dropout;
using nn::Flatten;
using nn::Linear;
using nn::MaxPool2d;
using nn::ReLU;
using nn::Sequential;
using util::Rng;

Sequential make_lenet5(std::uint64_t seed, bool paper_width) {
  Rng rng(seed, "lenet5-init");
  Sequential m("lenet5");
  if (paper_width) {
    // Caffe-style LeNet: 431,080 parameters, matching the paper's "431K".
    m.emplace<Conv2d>(Conv2dSpec{.in_channels = 1, .out_channels = 20,
                                 .kernel = 5},
                      rng, "conv1");
    m.emplace<ReLU>("relu1");
    m.emplace<MaxPool2d>(2, 2, "pool1");
    m.emplace<Conv2d>(Conv2dSpec{.in_channels = 20, .out_channels = 50,
                                 .kernel = 5},
                      rng, "conv2");
    m.emplace<ReLU>("relu2");
    m.emplace<MaxPool2d>(2, 2, "pool2");
    m.emplace<Flatten>("flatten");
    m.emplace<Linear>(50 * 4 * 4, 500, rng, "fc1");
    m.emplace<ReLU>("relu3");
    m.emplace<Linear>(500, 10, rng, "fc2");
  } else {
    // The classic 61.7K-parameter LeNet5.
    m.emplace<Conv2d>(Conv2dSpec{.in_channels = 1, .out_channels = 6,
                                 .kernel = 5, .padding = 2},
                      rng, "conv1");
    m.emplace<ReLU>("relu1");
    m.emplace<MaxPool2d>(2, 2, "pool1");
    m.emplace<Conv2d>(Conv2dSpec{.in_channels = 6, .out_channels = 16,
                                 .kernel = 5},
                      rng, "conv2");
    m.emplace<ReLU>("relu2");
    m.emplace<MaxPool2d>(2, 2, "pool2");
    m.emplace<Flatten>("flatten");
    m.emplace<Linear>(16 * 5 * 5, 120, rng, "fc1");
    m.emplace<ReLU>("relu3");
    m.emplace<Linear>(120, 84, rng, "fc2");
    m.emplace<ReLU>("relu4");
    m.emplace<Linear>(84, 10, rng, "fc3");
  }
  return m;
}

Sequential make_cifarnet(std::uint64_t seed) {
  Rng rng(seed, "cifarnet-init");
  Sequential m("cifarnet");
  // VGG-style stack, 1,297,678 parameters (paper quotes 1.3M).
  m.emplace<Conv2d>(Conv2dSpec{.in_channels = 3, .out_channels = 32,
                               .kernel = 3, .padding = 1},
                    rng, "conv1a");
  m.emplace<ReLU>("relu1a");
  m.emplace<Conv2d>(Conv2dSpec{.in_channels = 32, .out_channels = 32,
                               .kernel = 3, .padding = 1},
                    rng, "conv1b");
  m.emplace<ReLU>("relu1b");
  m.emplace<MaxPool2d>(2, 2, "pool1");
  m.emplace<Conv2d>(Conv2dSpec{.in_channels = 32, .out_channels = 64,
                               .kernel = 3, .padding = 1},
                    rng, "conv2a");
  m.emplace<ReLU>("relu2a");
  m.emplace<Conv2d>(Conv2dSpec{.in_channels = 64, .out_channels = 64,
                               .kernel = 3, .padding = 1},
                    rng, "conv2b");
  m.emplace<ReLU>("relu2b");
  m.emplace<MaxPool2d>(2, 2, "pool2");
  m.emplace<Flatten>("flatten");
  m.emplace<Linear>(64 * 8 * 8, 300, rng, "fc1");
  m.emplace<ReLU>("relu3");
  m.emplace<Dropout>(0.3, seed ^ 0xd20ULL, "dropout");
  m.emplace<Linear>(300, 10, rng, "fc2");
  return m;
}

Sequential make_lenet5_small(std::uint64_t seed) {
  Rng rng(seed, "lenet5-small-init");
  Sequential m("lenet5-small");
  m.emplace<Conv2d>(Conv2dSpec{.in_channels = 1, .out_channels = 4,
                               .kernel = 3, .padding = 1},
                    rng, "conv1");
  m.emplace<ReLU>("relu1");
  m.emplace<MaxPool2d>(2, 2, "pool1");
  m.emplace<Conv2d>(Conv2dSpec{.in_channels = 4, .out_channels = 8,
                               .kernel = 3, .padding = 1},
                    rng, "conv2");
  m.emplace<ReLU>("relu2");
  m.emplace<MaxPool2d>(2, 2, "pool2");
  m.emplace<Flatten>("flatten");
  m.emplace<Linear>(8 * 7 * 7, 32, rng, "fc1");
  m.emplace<ReLU>("relu3");
  m.emplace<Linear>(32, 10, rng, "fc2");
  return m;
}

Sequential make_cifarnet_small(std::uint64_t seed) {
  Rng rng(seed, "cifarnet-small-init");
  Sequential m("cifarnet-small");
  m.emplace<Conv2d>(Conv2dSpec{.in_channels = 3, .out_channels = 8,
                               .kernel = 3, .padding = 1},
                    rng, "conv1");
  m.emplace<ReLU>("relu1");
  m.emplace<MaxPool2d>(2, 2, "pool1");
  m.emplace<Conv2d>(Conv2dSpec{.in_channels = 8, .out_channels = 16,
                               .kernel = 3, .padding = 1},
                    rng, "conv2");
  m.emplace<ReLU>("relu2");
  m.emplace<MaxPool2d>(2, 2, "pool2");
  m.emplace<Flatten>("flatten");
  m.emplace<Linear>(16 * 8 * 8, 64, rng, "fc1");
  m.emplace<ReLU>("relu3");
  m.emplace<Linear>(64, 10, rng, "fc2");
  return m;
}

Sequential make_model(const std::string& name, std::uint64_t seed) {
  if (name == "lenet5") return make_lenet5(seed);
  if (name == "lenet5-classic") return make_lenet5(seed, /*paper_width=*/false);
  if (name == "cifarnet") return make_cifarnet(seed);
  if (name == "lenet5-small") return make_lenet5_small(seed);
  if (name == "cifarnet-small") return make_cifarnet_small(seed);
  throw std::invalid_argument("unknown model name: " + name);
}

InputSpec input_spec(const std::string& name) {
  if (name.rfind("lenet5", 0) == 0) return InputSpec{1, 28, 28};
  if (name.rfind("cifarnet", 0) == 0) return InputSpec{3, 32, 32};
  throw std::invalid_argument("unknown model name: " + name);
}

}  // namespace con::models
