#include "io/checkpoint.h"

#include "compress/clustering.h"
#include "compress/fixed_point.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace con::io {

namespace {

constexpr char kMagic[4] = {'C', 'O', 'N', 'M'};
constexpr std::uint32_t kVersion = 3;

void write_bytes(std::ostream& f, const void* data, std::size_t n) {
  f.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

void read_bytes(std::istream& f, void* data, std::size_t n) {
  f.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (!f) throw std::runtime_error("checkpoint: unexpected end of file");
}

template <typename T>
void write_pod(std::ostream& f, T v) {
  write_bytes(f, &v, sizeof(T));
}

template <typename T>
T read_pod(std::istream& f) {
  T v;
  read_bytes(f, &v, sizeof(T));
  return v;
}

void write_string(std::ostream& f, const std::string& s) {
  write_pod<std::uint64_t>(f, s.size());
  write_bytes(f, s.data(), s.size());
}

std::string read_string(std::istream& f) {
  const auto n = read_pod<std::uint64_t>(f);
  if (n > (1u << 20)) throw std::runtime_error("checkpoint: string too long");
  std::string s(static_cast<std::size_t>(n), '\0');
  read_bytes(f, s.data(), s.size());
  return s;
}

void write_tensor_body(std::ostream& f, const tensor::Tensor& t) {
  write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(t.rank()));
  for (tensor::Index d : t.shape().dims()) write_pod<std::int64_t>(f, d);
  write_bytes(f, t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

tensor::Tensor read_tensor_body(std::istream& f) {
  const auto rank = read_pod<std::uint32_t>(f);
  if (rank > 8) throw std::runtime_error("checkpoint: implausible rank");
  std::vector<tensor::Index> dims(rank);
  for (auto& d : dims) {
    d = read_pod<std::int64_t>(f);
    if (d < 0 || d > (1 << 28)) {
      throw std::runtime_error("checkpoint: implausible dimension");
    }
  }
  tensor::Tensor t{tensor::Shape{std::move(dims)}};
  read_bytes(f, t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  return t;
}

void write_payload(std::ostream& f, const std::vector<nn::Parameter*>& params) {
  write_pod<std::uint64_t>(f, params.size());
  for (nn::Parameter* p : params) {
    write_string(f, p->name);
    write_tensor_body(f, p->value);
    write_pod<std::uint8_t>(f, p->has_mask() ? 1 : 0);
    if (p->has_mask()) write_tensor_body(f, p->mask);
    if (const auto* fp =
            dynamic_cast<const compress::FixedPointWeightTransform*>(
                p->transform.get())) {
      write_pod<std::uint8_t>(f, 1);
      write_pod<std::int32_t>(f, fp->format().total_bits);
      write_pod<std::int32_t>(f, fp->format().integer_bits);
    } else if (const auto* cl =
                   dynamic_cast<const compress::ClusterWeightTransform*>(
                       p->transform.get())) {
      write_pod<std::uint8_t>(f, 2);
      write_pod<std::int32_t>(f, cl->bits());
      write_pod<std::uint64_t>(f, cl->centroids().size());
      for (float c : cl->centroids()) write_pod<float>(f, c);
    } else {
      if (p->transform != nullptr) {
        throw std::runtime_error("save_model: parameter " + p->name +
                                 " carries an unserializable weight transform");
      }
      write_pod<std::uint8_t>(f, 0);
    }
  }
}

void load_payload(std::istream& f, std::uint32_t version,
                  const std::vector<nn::Parameter*>& params,
                  const std::string& path) {
  const auto count = read_pod<std::uint64_t>(f);
  if (count != params.size()) {
    throw std::runtime_error("checkpoint parameter count mismatch: " + path +
                             " has " + std::to_string(count) +
                             ", model has " + std::to_string(params.size()));
  }
  for (nn::Parameter* p : params) {
    const std::string name = read_string(f);
    if (name != p->name) {
      throw std::runtime_error("checkpoint parameter order mismatch: " + name +
                               " vs " + p->name);
    }
    tensor::Tensor value = read_tensor_body(f);
    if (value.shape() != p->value.shape()) {
      throw std::runtime_error("checkpoint shape mismatch for " + name);
    }
    p->value = std::move(value);
    const auto has_mask = read_pod<std::uint8_t>(f);
    if (has_mask) {
      tensor::Tensor mask = read_tensor_body(f);
      if (mask.shape() != p->value.shape()) {
        throw std::runtime_error("checkpoint mask shape mismatch for " + name);
      }
      p->mask = std::move(mask);
    } else {
      p->mask = tensor::Tensor();
    }
    p->transform.reset();
    if (version >= 2) {
      const auto kind = read_pod<std::uint8_t>(f);
      if (kind == 1) {
        compress::FixedPointFormat fmt;
        fmt.total_bits = read_pod<std::int32_t>(f);
        fmt.integer_bits = read_pod<std::int32_t>(f);
        if (fmt.total_bits < 2 || fmt.total_bits > 64 ||
            fmt.integer_bits < 1 || fmt.integer_bits >= fmt.total_bits) {
          throw std::runtime_error("checkpoint: bad fixed-point record");
        }
        p->transform =
            std::make_shared<const compress::FixedPointWeightTransform>(fmt);
      } else if (kind == 2) {
        const auto bits = read_pod<std::int32_t>(f);
        const auto k = read_pod<std::uint64_t>(f);
        if (bits < 1 || bits > 16 || k == 0 || k > (1u << 17)) {
          throw std::runtime_error("checkpoint: bad clustering record");
        }
        std::vector<float> centroids(static_cast<std::size_t>(k));
        for (float& c : centroids) c = read_pod<float>(f);
        p->transform =
            std::make_shared<const compress::ClusterWeightTransform>(
                std::move(centroids), bits);
      } else if (kind != 0) {
        throw std::runtime_error("checkpoint: unknown transform kind");
      }
    }
    // Everything about this parameter may have changed; invalidate packed
    // weight panels (nn/packed_weights.h).
    p->bump_version();
  }
}

struct Header {
  std::uint32_t version = 0;
  std::string model_name;
  store::Hash payload_hash;
  store::Hash topology_hash;
  std::uint64_t payload_size = 0;
};

Header read_header(std::istream& f, const std::string& path) {
  char magic[4];
  read_bytes(f, magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error(path + " is not a model checkpoint");
  }
  Header h;
  h.version = read_pod<std::uint32_t>(f);
  if (h.version < 1 || h.version > kVersion) {
    throw std::runtime_error("unsupported checkpoint version");
  }
  h.model_name = read_string(f);
  if (h.version >= 3) {
    read_bytes(f, h.payload_hash.bytes.data(), h.payload_hash.bytes.size());
    read_bytes(f, h.topology_hash.bytes.data(), h.topology_hash.bytes.size());
    h.payload_size = read_pod<std::uint64_t>(f);
  }
  return h;
}

}  // namespace

store::Hash topology_signature(const nn::Sequential& model) {
  store::Sha256 h;
  h.update("topology 1\n");
  for (const nn::Parameter* param : model.parameters()) {
    h.update(param->name);
    h.update("\n");
    for (tensor::Index d : param->value.shape().dims()) {
      const std::int64_t dim = d;
      h.update(&dim, sizeof(dim));
    }
    h.update(";");
  }
  return h.finish();
}

store::Hash model_state_hash(const nn::Sequential& model) {
  store::Sha256 h;
  h.update("model-state 1\n");
  for (const nn::Parameter* param : model.parameters()) {
    h.update(param->name);
    h.update("\n");
    for (tensor::Index d : param->value.shape().dims()) {
      const std::int64_t dim = d;
      h.update(&dim, sizeof(dim));
    }
    const tensor::Tensor& value = param->value;
    h.update(value.data(),
             static_cast<std::size_t>(value.numel()) * sizeof(float));
    h.update(param->has_mask() ? "m1" : "m0");
    if (param->has_mask()) {
      const tensor::Tensor& mask = param->mask;
      h.update(mask.data(),
               static_cast<std::size_t>(mask.numel()) * sizeof(float));
    }
    if (param->transform != nullptr) {
      h.update(param->transform->describe());
    }
    h.update(";");
  }
  return h.finish();
}

void save_model(nn::Sequential& model, const std::string& path) {
  // Serialize the payload to memory first: the v3 header carries its hash
  // and size, and checkpoints are small (at most a few MB) relative to the
  // training runs that produce them.
  std::ostringstream payload_stream;
  write_payload(payload_stream, model.parameters());
  const std::string payload = payload_stream.str();

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  write_bytes(f, kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(f, kVersion);
  write_string(f, model.name());
  const store::Hash payload_hash =
      store::hash_bytes(payload.data(), payload.size());
  const store::Hash topo_hash = topology_signature(model);
  write_bytes(f, payload_hash.bytes.data(), payload_hash.bytes.size());
  write_bytes(f, topo_hash.bytes.data(), topo_hash.bytes.size());
  write_pod<std::uint64_t>(f, payload.size());
  write_bytes(f, payload.data(), payload.size());
  if (!f) throw std::runtime_error("checkpoint: write failed for " + path);
}

void load_model_into(nn::Sequential& model, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  const Header h = read_header(f, path);
  if (h.version >= 3) {
    // Pull the payload into memory and verify its digest before touching
    // any parameter: a truncated or bit-rotted artifact must fail loudly,
    // not half-load.
    std::string payload(static_cast<std::size_t>(h.payload_size), '\0');
    read_bytes(f, payload.data(), payload.size());
    if (store::hash_bytes(payload.data(), payload.size()) != h.payload_hash) {
      throw std::runtime_error("checkpoint payload hash mismatch for " + path +
                               " (corrupt or truncated artifact)");
    }
    std::istringstream ps(payload);
    load_payload(ps, h.version, model.parameters(), path);
  } else {
    load_payload(f, h.version, model.parameters(), path);
  }
  // Checkpoints are self-describing: the stored name travels with the
  // weights (a store object's filename is a hash, not a description).
  if (!h.model_name.empty()) model.set_name(h.model_name);
}

CheckpointInfo read_checkpoint_info(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  const Header h = read_header(f, path);
  return CheckpointInfo{.version = h.version,
                        .model_name = h.model_name,
                        .payload_hash = h.payload_hash,
                        .topology_hash = h.topology_hash};
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

void save_tensor(const tensor::Tensor& t, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  write_tensor_body(f, t);
  if (!f) throw std::runtime_error("tensor write failed for " + path);
}

tensor::Tensor load_tensor(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  return read_tensor_body(f);
}

std::string artifacts_dir() {
  const char* env = std::getenv("CON_ARTIFACTS_DIR");
  std::string dir = env != nullptr ? env : "artifacts";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw std::runtime_error("cannot create artifacts dir " + dir);
  return dir;
}

}  // namespace con::io
