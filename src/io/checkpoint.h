// Binary checkpoint format for model parameters and pruning masks.
//
// Training is the expensive step of the study on a CPU host, so sweeps
// train each model once and benches re-load the artifacts. The format
// stores named parameter tensors (values + optional masks); architecture is
// reconstructed by the model builders, and loading validates that names and
// shapes line up.
//
// Layout (little-endian), version 2:
//   magic "CONM" | u32 version | u64 name_len | name bytes
//   u64 param_count
//   per parameter:
//     u64 name_len | name | u32 rank | i64 dims[rank] | f32 data[numel]
//     u8 has_mask | (f32 mask[numel] if has_mask)
//     u8 transform_kind | transform payload
//       kind 0: none
//       kind 1: fixed-point  (i32 total_bits | i32 integer_bits)
//       kind 2: clustering   (i32 bits | u64 k | f32 centroids[k])
// Version-1 files (no transform records) still load; their parameters get
// no transform.
#pragma once

#include <string>

#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace con::io {

void save_model(nn::Sequential& model, const std::string& path);

// Loads parameter values/masks into an already-built `model`. Throws if the
// checkpoint's parameter names or shapes do not match the model.
void load_model_into(nn::Sequential& model, const std::string& path);

bool file_exists(const std::string& path);

// Standalone tensor serialization (used for cached datasets/analysis).
void save_tensor(const tensor::Tensor& t, const std::string& path);
tensor::Tensor load_tensor(const std::string& path);

// Directory where examples/benches cache trained models; created on first
// use. Defaults to "artifacts" under the current working directory, or
// $CON_ARTIFACTS_DIR when set.
std::string artifacts_dir();

}  // namespace con::io
