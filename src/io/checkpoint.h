// Binary checkpoint format for model parameters and pruning masks.
//
// Training is the expensive step of the study on a CPU host, so sweeps
// train each model once and re-load the artifacts — today through the
// content-addressed store (src/store/), where a checkpoint may be served
// long after the code that wrote it has changed. Version 3 therefore makes
// every checkpoint self-describing and self-checking: the header carries a
// SHA-256 of the parameter payload (bit-rot and truncation fail loudly at
// load time instead of corrupting a sweep) and a topology signature (the
// hash of the parameter names/shapes the artifact expects), so a file
// identifies what it is without reference to the path it was found under.
//
// Layout (little-endian), version 3:
//   magic "CONM" | u32 version | u64 name_len | name bytes
//   u8 payload_sha256[32] | u8 topology_sha256[32] | u64 payload_size
//   payload:
//     u64 param_count
//     per parameter:
//       u64 name_len | name | u32 rank | i64 dims[rank] | f32 data[numel]
//       u8 has_mask | (f32 mask[numel] if has_mask)
//       u8 transform_kind | transform payload
//         kind 0: none
//         kind 1: fixed-point  (i32 total_bits | i32 integer_bits)
//         kind 2: clustering   (i32 bits | u64 k | f32 centroids[k])
// Version-1 (no transform records) and version-2 (no hashed header) files
// still load; they simply skip the integrity check.
#pragma once

#include <cstdint>
#include <string>

#include "nn/sequential.h"
#include "store/hash.h"
#include "tensor/tensor.h"

namespace con::io {

void save_model(nn::Sequential& model, const std::string& path);

// Loads parameter values/masks/transforms into an already-built `model` and
// adopts the stored model name. Throws if the payload hash does not match
// (v3) or the checkpoint's parameter names or shapes do not match the
// model.
void load_model_into(nn::Sequential& model, const std::string& path);

// Header fields of a checkpoint, readable without loading the payload.
struct CheckpointInfo {
  std::uint32_t version = 0;
  std::string model_name;
  // Zero for pre-v3 files.
  store::Hash payload_hash;
  store::Hash topology_hash;
};
CheckpointInfo read_checkpoint_info(const std::string& path);

// Structural signature: SHA-256 over the ordered parameter names and
// shapes. Two models agree iff load_model_into could succeed between them.
store::Hash topology_signature(const nn::Sequential& model);

// Content hash of the full parameter state — names, shapes, value bytes,
// mask bytes and transform descriptions. Used as the "initial weights"
// closure input of training derivations: it changes whenever
// models::make_model (topology or init scheme) or the seed changes, which
// is exactly when a cached training artifact must be invalidated.
store::Hash model_state_hash(const nn::Sequential& model);

bool file_exists(const std::string& path);

// Standalone tensor serialization (used for cached datasets/analysis).
void save_tensor(const tensor::Tensor& t, const std::string& path);
tensor::Tensor load_tensor(const std::string& path);

// Directory where examples/benches drop CSVs, manifests and their artifact
// store; created on first use. Defaults to "artifacts" under the current
// working directory, or $CON_ARTIFACTS_DIR when set.
std::string artifacts_dir();

}  // namespace con::io
