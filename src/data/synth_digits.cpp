#include "data/synth_digits.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace con::data {

namespace {

// Classic 5x7 bitmap font, one row-string per scanline, '#' = ink.
constexpr std::array<std::array<const char*, 7>, 10> kGlyphs = {{
    // 0
    {{" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "}},
    // 1
    {{"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "}},
    // 2
    {{" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"}},
    // 3
    {{" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "}},
    // 4
    {{"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "}},
    // 5
    {{"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "}},
    // 6
    {{" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "}},
    // 7
    {{"#####", "    #", "   # ", "  #  ", "  #  ", "  #  ", "  #  "}},
    // 8
    {{" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "}},
    // 9
    {{" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "}},
}};

constexpr int kGlyphW = 5;
constexpr int kGlyphH = 7;

// Bilinear sample of the glyph bitmap at continuous glyph coordinates.
float sample_glyph(int digit, float gx, float gy) {
  const auto& glyph = kGlyphs[static_cast<std::size_t>(digit)];
  auto ink = [&](int x, int y) -> float {
    if (x < 0 || x >= kGlyphW || y < 0 || y >= kGlyphH) return 0.0f;
    return glyph[static_cast<std::size_t>(y)][x] == '#' ? 1.0f : 0.0f;
  };
  const int x0 = static_cast<int>(std::floor(gx));
  const int y0 = static_cast<int>(std::floor(gy));
  const float fx = gx - static_cast<float>(x0);
  const float fy = gy - static_cast<float>(y0);
  const float top = ink(x0, y0) * (1 - fx) + ink(x0 + 1, y0) * fx;
  const float bot = ink(x0, y0 + 1) * (1 - fx) + ink(x0 + 1, y0 + 1) * fx;
  return top * (1 - fy) + bot * fy;
}

}  // namespace

Tensor render_digit(int digit, con::util::Rng& rng,
                    const SynthDigitsConfig& config) {
  if (digit < 0 || digit >= kDigitClasses) {
    throw std::invalid_argument("render_digit: class out of range");
  }
  const Index s = kDigitImageSize;
  Tensor img({1, s, s});

  // Random affine parameters.
  const float theta = rng.uniform_f(-config.max_rotation, config.max_rotation);
  const float scale_x = rng.uniform_f(config.min_scale, config.max_scale);
  const float scale_y = rng.uniform_f(config.min_scale, config.max_scale);
  const float shear = rng.uniform_f(-config.max_shear, config.max_shear);
  const float shift_x = rng.uniform_f(-config.max_shift, config.max_shift);
  const float shift_y = rng.uniform_f(-config.max_shift, config.max_shift);
  const float ink_level = rng.uniform_f(0.75f, 1.0f);
  const float bg_level = rng.uniform_f(0.0f, 0.08f);

  // Nominal glyph box occupies the central ~20x24 pixels of the 28x28
  // canvas; map output pixel -> glyph coordinates through the inverse
  // affine transform around the canvas centre.
  const float cx = static_cast<float>(s) / 2.0f;
  const float cy = static_cast<float>(s) / 2.0f;
  const float pixels_per_cell_x = 3.6f * scale_x;
  const float pixels_per_cell_y = 3.2f * scale_y;
  const float cos_t = std::cos(theta);
  const float sin_t = std::sin(theta);

  float* d = img.data();
  for (Index y = 0; y < s; ++y) {
    for (Index x = 0; x < s; ++x) {
      // Translate to centre, unrotate, unshear, unscale.
      const float ux = static_cast<float>(x) - cx - shift_x;
      const float uy = static_cast<float>(y) - cy - shift_y;
      const float rx = cos_t * ux + sin_t * uy;
      const float ry = -sin_t * ux + cos_t * uy;
      const float sx = rx - shear * ry;
      const float gx = sx / pixels_per_cell_x + kGlyphW / 2.0f - 0.5f;
      const float gy = ry / pixels_per_cell_y + kGlyphH / 2.0f - 0.5f;
      float v = sample_glyph(digit, gx, gy) * ink_level + bg_level;
      v += rng.normal_f(0.0f, config.noise_stddev);
      d[y * s + x] = std::clamp(v, 0.0f, 1.0f);
    }
  }
  return img;
}

TrainTestSplit make_synth_digits(const SynthDigitsConfig& config) {
  con::util::Rng train_rng(config.seed, "synth-digits-train");
  con::util::Rng test_rng(config.seed, "synth-digits-test");

  auto build = [&](Index n, con::util::Rng& rng) {
    Dataset ds;
    ds.images = Tensor({n, 1, kDigitImageSize, kDigitImageSize});
    ds.labels.resize(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) {
      const int digit = static_cast<int>(i % kDigitClasses);
      tensor::set_batch(ds.images, i, render_digit(digit, rng, config));
      ds.labels[static_cast<std::size_t>(i)] = digit;
    }
    return ds;
  };

  TrainTestSplit split;
  split.train = build(config.train_size, train_rng);
  split.test = build(config.test_size, test_rng);
  validate_dataset(split.train, kDigitClasses);
  validate_dataset(split.test, kDigitClasses);
  return split;
}

}  // namespace con::data
