#include "data/synth_objects.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace con::data {

namespace {

struct Rgb {
  float r, g, b;
};

Rgb random_color(con::util::Rng& rng, float lo, float hi) {
  return Rgb{rng.uniform_f(lo, hi), rng.uniform_f(lo, hi),
             rng.uniform_f(lo, hi)};
}

// Ensure foreground and background are far enough apart to be learnable.
Rgb contrasting_color(con::util::Rng& rng, const Rgb& other) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    Rgb c = random_color(rng, 0.0f, 1.0f);
    const float dist = std::fabs(c.r - other.r) + std::fabs(c.g - other.g) +
                       std::fabs(c.b - other.b);
    if (dist > 0.8f) return c;
  }
  return Rgb{1.0f - other.r, 1.0f - other.g, 1.0f - other.b};
}

}  // namespace

Tensor render_object(int cls, con::util::Rng& rng,
                     const SynthObjectsConfig& config) {
  if (cls < 0 || cls >= kObjectClasses) {
    throw std::invalid_argument("render_object: class out of range");
  }
  const Index s = kObjectImageSize;
  Tensor img({3, s, s});

  const Rgb bg = random_color(rng, 0.0f, 1.0f);
  const Rgb fg = contrasting_color(rng, bg);
  const float cx = rng.uniform_f(12.0f, 20.0f);
  const float cy = rng.uniform_f(12.0f, 20.0f);
  const float radius = rng.uniform_f(7.0f, 11.0f);
  const float angle = rng.uniform_f(0.0f, 6.2831853f);
  const float period = rng.uniform_f(4.0f, 7.0f);
  const float phase = rng.uniform_f(0.0f, period);
  const float cos_a = std::cos(angle), sin_a = std::sin(angle);

  // Coverage in [0,1]: how much of pixel (x, y) is foreground.
  auto coverage = [&](float x, float y) -> float {
    const float dx = x - cx, dy = y - cy;
    switch (cls) {
      case 0: {  // disc
        const float d = std::sqrt(dx * dx + dy * dy);
        return std::clamp(radius - d + 0.5f, 0.0f, 1.0f);
      }
      case 1: {  // rotated square
        const float rx = cos_a * dx + sin_a * dy;
        const float ry = -sin_a * dx + cos_a * dy;
        const float d = std::max(std::fabs(rx), std::fabs(ry));
        return std::clamp(radius - d + 0.5f, 0.0f, 1.0f);
      }
      case 2: {  // upward triangle (rotated)
        const float rx = cos_a * dx + sin_a * dy;
        const float ry = -sin_a * dx + cos_a * dy;
        // Triangle as intersection of three half-planes.
        const float d1 = ry + radius * 0.5f;                       // bottom
        const float d2 = -0.866f * rx - 0.5f * ry + radius * 0.5f;  // right
        const float d3 = 0.866f * rx - 0.5f * ry + radius * 0.5f;   // left
        const float d = std::min({d1, d2, d3});
        return std::clamp(d + 0.5f, 0.0f, 1.0f);
      }
      case 3:  // horizontal stripes
        return std::fmod(y + phase, period) < period * 0.5f ? 1.0f : 0.0f;
      case 4:  // vertical stripes
        return std::fmod(x + phase, period) < period * 0.5f ? 1.0f : 0.0f;
      case 5: {  // checkerboard
        const bool a = std::fmod(x + phase, period) < period * 0.5f;
        const bool b = std::fmod(y + phase, period) < period * 0.5f;
        return a == b ? 1.0f : 0.0f;
      }
      case 6: {  // radial gradient blob
        const float d = std::sqrt(dx * dx + dy * dy);
        return std::clamp(1.0f - d / (radius * 1.6f), 0.0f, 1.0f);
      }
      case 7: {  // annulus
        const float d = std::sqrt(dx * dx + dy * dy);
        const float band = radius * 0.35f;
        return std::clamp(band - std::fabs(d - radius * 0.8f) + 0.5f, 0.0f,
                          1.0f);
      }
      case 8: {  // plus / cross
        const float rx = std::fabs(cos_a * dx + sin_a * dy);
        const float ry = std::fabs(-sin_a * dx + cos_a * dy);
        const float arm = radius * 0.38f;
        const float in_x = std::min(arm - rx, radius - ry);
        const float in_y = std::min(arm - ry, radius - rx);
        return std::clamp(std::max(in_x, in_y) + 0.5f, 0.0f, 1.0f);
      }
      case 9: {  // diagonal stripes
        const float t = (x + y) * 0.7071f;
        return std::fmod(t + phase, period) < period * 0.5f ? 1.0f : 0.0f;
      }
      default:
        return 0.0f;
    }
  };

  float* d = img.data();
  const Index plane = s * s;
  for (Index y = 0; y < s; ++y) {
    for (Index x = 0; x < s; ++x) {
      const float c =
          coverage(static_cast<float>(x), static_cast<float>(y));
      const float r = bg.r + (fg.r - bg.r) * c + rng.normal_f(0.0f, config.noise_stddev);
      const float g = bg.g + (fg.g - bg.g) * c + rng.normal_f(0.0f, config.noise_stddev);
      const float b = bg.b + (fg.b - bg.b) * c + rng.normal_f(0.0f, config.noise_stddev);
      d[0 * plane + y * s + x] = std::clamp(r, 0.0f, 1.0f);
      d[1 * plane + y * s + x] = std::clamp(g, 0.0f, 1.0f);
      d[2 * plane + y * s + x] = std::clamp(b, 0.0f, 1.0f);
    }
  }
  return img;
}

TrainTestSplit make_synth_objects(const SynthObjectsConfig& config) {
  con::util::Rng train_rng(config.seed, "synth-objects-train");
  con::util::Rng test_rng(config.seed, "synth-objects-test");

  auto build = [&](Index n, con::util::Rng& rng) {
    Dataset ds;
    ds.images = Tensor({n, 3, kObjectImageSize, kObjectImageSize});
    ds.labels.resize(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) {
      const int cls = static_cast<int>(i % kObjectClasses);
      tensor::set_batch(ds.images, i, render_object(cls, rng, config));
      ds.labels[static_cast<std::size_t>(i)] = cls;
    }
    return ds;
  };

  TrainTestSplit split;
  split.train = build(config.train_size, train_rng);
  split.test = build(config.test_size, test_rng);
  validate_dataset(split.train, kObjectClasses);
  validate_dataset(split.test, kObjectClasses);
  return split;
}

}  // namespace con::data
