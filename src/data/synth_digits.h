// SynthDigits: procedural 28x28 grayscale digit dataset (MNIST stand-in).
//
// The offline reproduction host has no MNIST files, so we synthesize a
// ten-class digit dataset: each sample renders a 5x7 bitmap-font glyph of
// its class through a random affine transform (translation, anisotropic
// scale, rotation, shear) with stroke-intensity jitter, background noise and
// a light blur. The classes are visually distinct but have enough
// intra-class variation that a CNN must genuinely learn — LeNet5 does not
// reach 100% trivially — which is what the transferability study needs: a
// trained network with a non-degenerate loss surface.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "util/rng.h"

namespace con::data {

struct SynthDigitsConfig {
  Index train_size = 4000;
  Index test_size = 1000;
  std::uint64_t seed = 0xd161;
  // Augmentation ranges (all sampled uniformly).
  float max_shift = 2.5f;       // pixels
  float max_rotation = 0.25f;   // radians
  float min_scale = 0.85f;
  float max_scale = 1.15f;
  float max_shear = 0.15f;
  float noise_stddev = 0.08f;
};

// Renders a single digit image [1, 28, 28] for class `digit` using the
// given RNG. Exposed for tests and visualisation examples.
Tensor render_digit(int digit, con::util::Rng& rng,
                    const SynthDigitsConfig& config);

// Builds balanced train/test splits. Deterministic in config.seed.
TrainTestSplit make_synth_digits(const SynthDigitsConfig& config = {});

inline constexpr int kDigitClasses = 10;
inline constexpr Index kDigitImageSize = 28;

}  // namespace con::data
