// In-memory labelled image dataset used across the study.
//
// Images are NCHW float tensors with values in [0, 1] — the domain the
// attacks clip adversarial samples to, matching the paper's pixel-space
// epsilon-ball setup.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace con::data {

using tensor::Index;
using tensor::Tensor;

struct Dataset {
  Tensor images;            // [N, C, H, W], values in [0, 1]
  std::vector<int> labels;  // N class ids

  Index size() const { return images.empty() ? 0 : images.dim(0); }
  int num_classes() const;

  // First `n` samples as a new dataset (used to carve attack subsets).
  Dataset take(Index n) const;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

// Validates invariants (shape/label agreement, pixel range); throws on
// violation. Called by dataset generators before returning.
void validate_dataset(const Dataset& ds, int expected_classes);

}  // namespace con::data
