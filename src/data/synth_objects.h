// SynthObjects: procedural 32x32 RGB object dataset (CIFAR-10 stand-in).
//
// Ten classes of parametric textured shapes — each class has a distinct
// geometry/texture family, while colour, position, size, orientation and
// noise vary per sample. The dataset forces a CifarNet-scale CNN to learn
// shape and texture features (colour alone does not identify a class), so
// the trained model has the non-trivial decision boundaries the
// adversarial-transferability study probes.
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "util/rng.h"

namespace con::data {

struct SynthObjectsConfig {
  Index train_size = 4000;
  Index test_size = 1000;
  std::uint64_t seed = 0xc1fa;
  float noise_stddev = 0.06f;
};

// Classes:
//  0 disc        1 square       2 triangle      3 horizontal stripes
//  4 vertical stripes  5 checkerboard  6 radial gradient  7 annulus (ring)
//  8 plus/cross  9 diagonal stripes
Tensor render_object(int cls, con::util::Rng& rng,
                     const SynthObjectsConfig& config);

TrainTestSplit make_synth_objects(const SynthObjectsConfig& config = {});

inline constexpr int kObjectClasses = 10;
inline constexpr Index kObjectImageSize = 32;

}  // namespace con::data
