#include "data/dataset.h"

#include <algorithm>
#include <stdexcept>

#include "tensor/ops.h"

namespace con::data {

int Dataset::num_classes() const {
  int k = 0;
  for (int y : labels) k = std::max(k, y + 1);
  return k;
}

Dataset Dataset::take(Index n) const {
  if (n < 0 || n > size()) {
    throw std::out_of_range("Dataset::take: n out of range");
  }
  std::vector<Index> dims = images.shape().dims();
  dims[0] = n;
  Dataset out;
  out.images = Tensor{tensor::Shape{std::move(dims)}};
  for (Index i = 0; i < n; ++i) {
    tensor::set_batch(out.images, i, tensor::slice_batch(images, i));
  }
  out.labels.assign(labels.begin(), labels.begin() + n);
  return out;
}

void validate_dataset(const Dataset& ds, int expected_classes) {
  if (ds.images.rank() != 4) {
    throw std::logic_error("dataset images must be [N, C, H, W]");
  }
  if (static_cast<std::size_t>(ds.images.dim(0)) != ds.labels.size()) {
    throw std::logic_error("dataset image/label count mismatch");
  }
  for (int y : ds.labels) {
    if (y < 0 || y >= expected_classes) {
      throw std::logic_error("dataset label out of range");
    }
  }
  const float lo = tensor::min_value(ds.images);
  const float hi = tensor::max_value(ds.images);
  if (lo < 0.0f || hi > 1.0f) {
    throw std::logic_error("dataset pixels must lie in [0, 1]");
  }
}

}  // namespace con::data
