// Deterministic random number generation for the whole study.
//
// Every source of randomness in the reproduction (weight init, data
// synthesis, shuffling, dropout) draws from a named stream derived from a
// single experiment seed, so runs are reproducible bit-for-bit regardless of
// evaluation order.
#pragma once

#include <cstdint>
#include <cmath>
#include <string_view>

namespace con::util {

// splitmix64: used to derive stream seeds and as the state initializer for
// xoshiro256**. Constants from Vigna's reference implementation.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a hash of a stream name, mixed with the experiment seed to produce
// independent named streams.
constexpr std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// xoshiro256** PRNG. Small, fast, and plenty good for ML workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  Rng(std::uint64_t experiment_seed, std::string_view stream_name) {
    std::uint64_t mixed = experiment_seed ^ hash_name(stream_name);
    reseed(mixed);
  }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64_next(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  float uniform_f(float lo, float hi) {
    return static_cast<float>(uniform(lo, hi));
  }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation would be overkill;
    // modulo bias is negligible for the ranges used here (n << 2^64).
    return next_u64() % n;
  }

  int below_int(int n) { return static_cast<int>(below(static_cast<std::uint64_t>(n))); }

  // Standard normal via Box-Muller (no cached spare: keeps the generator
  // stateless apart from the xoshiro words, which simplifies reseeding).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  float normal_f(float mean, float stddev) {
    return static_cast<float>(normal(mean, stddev));
  }

  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace con::util
