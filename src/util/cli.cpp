#include "util/cli.h"

#include <stdexcept>

namespace con::util {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) throw std::invalid_argument("bare '--' is not a flag");
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--no-name` always negates; otherwise `--name value` if the next
    // token is not itself a flag, else a boolean `--name`.
    if (arg.rfind("no-", 0) == 0) {
      flags_[arg.substr(3)] = "false";
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& fallback) const {
  used_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name,
                               std::int64_t fallback) const {
  used_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::stoll(it->second);
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  used_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::stod(it->second);
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  used_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("flag --" + name + " is not a boolean: " + v);
}

void CliFlags::check_unused() const {
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (!used_.count(name)) {
      throw std::invalid_argument("unknown flag --" + name);
    }
  }
}

}  // namespace con::util
