// Minimal leveled logging with compile-time-free runtime configuration.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>

namespace con::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel& log_level();

void log(LogLevel level, std::string_view msg);

// printf-style convenience wrappers.
template <typename... Args>
void logf(LogLevel level, const char* fmt, Args... args) {
  if (level < log_level()) return;
  char buf[1024];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  log(level, buf);
}

template <typename... Args>
void log_debug(const char* fmt, Args... args) {
  logf(LogLevel::kDebug, fmt, args...);
}
template <typename... Args>
void log_info(const char* fmt, Args... args) {
  logf(LogLevel::kInfo, fmt, args...);
}
template <typename... Args>
void log_warn(const char* fmt, Args... args) {
  logf(LogLevel::kWarn, fmt, args...);
}
template <typename... Args>
void log_error(const char* fmt, Args... args) {
  logf(LogLevel::kError, fmt, args...);
}

// Wall-clock stopwatch for coarse phase timing in examples and benches.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace con::util
