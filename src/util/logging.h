// Minimal leveled logging with compile-time-free runtime configuration.
//
// Every line carries the trace clock (obs::elapsed_seconds) and the obs
// thread id, so log output correlates 1:1 with span timestamps in a
// --trace export.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>

namespace con::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel& log_level();

void log(LogLevel level, std::string_view msg);

// printf-style convenience wrappers.
template <typename... Args>
void logf(LogLevel level, const char* fmt, Args... args) {
  // Passing a non-trivially-copyable object (std::string is the classic
  // accident) through C varargs is undefined behaviour that compiles
  // silently; reject it here. Pass std::string via .c_str().
  static_assert((std::is_trivially_copyable_v<Args> && ...),
                "logf: format arguments must be trivially copyable "
                "(pass std::string via .c_str())");
  if (level < log_level()) return;
  char buf[1024];
  const int needed = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (needed < 0) {
    log(level, "(logf: format error)");
    return;
  }
  std::size_t len = static_cast<std::size_t>(needed);
  if (len >= sizeof(buf)) {
    // Mark silent truncation: overwrite the tail with a UTF-8 ellipsis.
    buf[sizeof(buf) - 4] = '\xE2';
    buf[sizeof(buf) - 3] = '\x80';
    buf[sizeof(buf) - 2] = '\xA6';
    len = sizeof(buf) - 1;
  }
  log(level, std::string_view(buf, len));
}

template <typename... Args>
void log_debug(const char* fmt, Args... args) {
  logf(LogLevel::kDebug, fmt, args...);
}
template <typename... Args>
void log_info(const char* fmt, Args... args) {
  logf(LogLevel::kInfo, fmt, args...);
}
template <typename... Args>
void log_warn(const char* fmt, Args... args) {
  logf(LogLevel::kWarn, fmt, args...);
}
template <typename... Args>
void log_error(const char* fmt, Args... args) {
  logf(LogLevel::kError, fmt, args...);
}

// Wall-clock stopwatch for coarse phase timing in examples and benches.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace con::util
