// ASCII line plots for terminal output.
//
// The figure-reproduction benches print numeric tables; this renders the
// same series as a rough terminal plot so the *shape* of a figure (the
// reproduction target) is visible at a glance without leaving the shell.
#pragma once

#include <string>
#include <vector>

namespace con::util {

struct Series {
  std::string label;
  std::vector<double> ys;  // one value per shared x position
};

struct PlotOptions {
  int width = 60;    // plot area columns (x positions are spread over these)
  int height = 16;   // plot area rows
  double y_min = 0.0;
  double y_max = 1.0;
  bool auto_y = false;  // derive y range from the data instead
};

// Renders series sharing the x positions `xs` (printed as axis labels).
// Each series is drawn with its own glyph (1st: '*', 2nd: 'o', 3rd: '+',
// 4th: 'x', then letters); a legend line maps glyphs to labels.
std::string render_plot(const std::vector<double>& xs,
                        const std::vector<Series>& series,
                        const PlotOptions& options = {});

}  // namespace con::util
