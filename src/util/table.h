// Tabular result emitters: aligned console tables and CSV files, used by the
// figure-reproduction benches to print paper-style series.
#pragma once

#include <string>
#include <vector>

namespace con::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Convenience for mixed numeric rows.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  std::size_t num_rows() const { return rows_.size(); }

  // Render with aligned columns, e.g.
  //   density  base_acc  s1_comp_comp  ...
  //   1.000    0.9812    0.0531        ...
  std::string to_string() const;

  // RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string to_csv() const;

  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int precision = 4);

}  // namespace con::util
