#include "util/threadpool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>

#include "obs/obs.h"

namespace con::util {

namespace {

std::mutex g_config_mu;
std::size_t g_requested_threads = 0;  // 0 = hardware concurrency
bool g_created = false;
std::size_t g_created_size = 0;

// Ceiling on the pool size: guards against nonsense like `--threads -1`
// wrapping to SIZE_MAX and exhausting the process at thread creation.
constexpr std::size_t kMaxThreads = 256;

std::size_t resolve_threads(std::size_t n) {
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min(n, kMaxThreads);
}

std::size_t consume_global_size() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  g_created = true;
  g_created_size = resolve_threads(g_requested_threads);
  return g_created_size;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] {
      // Register the worker's trace ring up front under a stable name, so
      // pool threads show up labelled in exports even before their first
      // span — and their rings outlive the pool (obs keeps them), so no
      // flush is needed at shutdown.
      obs::set_thread_name("pool-" + std::to_string(i));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A throwing task must not skip the in-flight decrement below, or
    // wait_idle() deadlocks and the worker thread dies. Exceptions from
    // parallel_for bodies are captured by parallel_for itself; anything
    // escaping a bare submit() is dropped here by design.
    try {
      task();
    } catch (...) {
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(consume_global_size());
  return pool;
}

void ThreadPool::set_global_threads(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_config_mu);
  const std::size_t resolved = resolve_threads(n);
  if (g_created) {
    if (g_created_size != resolved) {
      throw std::logic_error(
          "ThreadPool::set_global_threads: global pool already created with "
          "a different size");
    }
    return;
  }
  g_requested_threads = resolved;
}

namespace {

// Shared state of one parallel_for call. Held by shared_ptr so helper
// tasks that start after the caller already returned (e.g. when another
// thread drained the whole range first) touch valid memory.
struct ParallelJob {
  // May reference the caller's function object: any drain that reaches it
  // claimed work first, and the caller only returns once every item is
  // accounted for, so the referenced object is still alive.
  std::function<void(std::size_t)> fn;
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  // Completion is counted in processed (or cancelled) ITEMS, not helper
  // tasks: helpers that never get scheduled simply find no work, and the
  // caller's own draining guarantees progress even when every pool worker
  // is blocked in a nested parallel_for.
  std::atomic<std::size_t> remaining{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::mutex err_mu;
  std::exception_ptr error;
};

void job_account(ParallelJob& job, std::size_t items) {
  if (items == 0) return;
  if (job.remaining.fetch_sub(items) == items) {
    std::lock_guard<std::mutex> lock(job.done_mu);
    job.done_cv.notify_all();
  }
}

void job_drain(ParallelJob& job) {
  for (;;) {
    const std::size_t lo = job.next.fetch_add(job.chunk);
    if (lo >= job.end) return;
    const std::size_t hi = std::min(lo + job.chunk, job.end);
    try {
      for (std::size_t i = lo; i < hi; ++i) job.fn(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(job.err_mu);
        if (!job.error) job.error = std::current_exception();
      }
      // Cancel the unclaimed remainder of the range. Chunks claimed
      // concurrently are accounted for by their claimants, so only
      // [old, end) is ours to retire.
      const std::size_t old = job.next.exchange(job.end);
      const std::size_t cancelled = old < job.end ? job.end - old : 0;
      job_account(job, (hi - lo) + cancelled);
      continue;
    }
    job_account(job, hi - lo);
  }
}

}  // namespace

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  ThreadPool& pool = ThreadPool::global();
  if (pool.size() <= 1 || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // conlint:allow(hot-path-alloc): one shared control block per parallel region, amortised over the whole index range
  auto job = std::make_shared<ParallelJob>();
  job->fn = [&fn, begin](std::size_t i) { fn(begin + i); };
  job->end = n;
  job->chunk = std::max<std::size_t>(
      grain, (n + pool.size() * 4 - 1) / (pool.size() * 4));
  job->remaining.store(n);

  const std::size_t helpers =
      std::min(pool.size(), (n + job->chunk - 1) / job->chunk);
  for (std::size_t h = 1; h < helpers; ++h) {
    pool.submit([job] { job_drain(*job); });
  }
  // The caller participates instead of blocking on pool capacity, which
  // makes nested parallel_for calls deadlock-free.
  job_drain(*job);

  {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock,
                      [&] { return job->remaining.load() == 0; });
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace con::util
