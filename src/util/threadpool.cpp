#include "util/threadpool.h"

#include <algorithm>
#include <atomic>

namespace con::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (begin >= end) return;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t n = end - begin;
  if (pool.size() <= 1 || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(pool.size() * 4, (n + grain - 1) / grain);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::atomic<std::size_t> next{begin};
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.submit([&fn, &next, end, chunk_size] {
      for (;;) {
        std::size_t lo = next.fetch_add(chunk_size);
        if (lo >= end) return;
        std::size_t hi = std::min(lo + chunk_size, end);
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace con::util
