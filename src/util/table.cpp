#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace con::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width does not match header width");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  f << to_csv();
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace con::util
