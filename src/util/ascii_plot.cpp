#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace con::util {

namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', 'a', 'b', 'c', 'd'};

}  // namespace

std::string render_plot(const std::vector<double>& xs,
                        const std::vector<Series>& series,
                        const PlotOptions& options) {
  if (xs.size() < 2) {
    throw std::invalid_argument("render_plot: need at least 2 x positions");
  }
  for (const Series& s : series) {
    if (s.ys.size() != xs.size()) {
      throw std::invalid_argument("render_plot: series '" + s.label +
                                  "' length mismatch");
    }
  }
  if (series.empty()) {
    throw std::invalid_argument("render_plot: no series");
  }
  double lo = options.y_min, hi = options.y_max;
  if (options.auto_y) {
    lo = series[0].ys[0];
    hi = lo;
    for (const Series& s : series) {
      for (double y : s.ys) {
        lo = std::min(lo, y);
        hi = std::max(hi, y);
      }
    }
    if (hi == lo) hi = lo + 1.0;
  }
  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);

  // grid[row][col]; row 0 is the top
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  auto col_of = [&](std::size_t i) {
    return static_cast<int>(
        std::lround(static_cast<double>(i) /
                    static_cast<double>(xs.size() - 1) * (w - 1)));
  };
  auto row_of = [&](double y) {
    double t = (y - lo) / (hi - lo);
    t = std::min(1.0, std::max(0.0, t));
    return (h - 1) - static_cast<int>(std::lround(t * (h - 1)));
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const Series& s = series[si];
    // draw markers and a crude line between consecutive points
    for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
      const int c0 = col_of(i), c1 = col_of(i + 1);
      const int r0 = row_of(s.ys[i]), r1 = row_of(s.ys[i + 1]);
      const int steps = std::max(1, c1 - c0);
      for (int step = 0; step <= steps; ++step) {
        const int c = c0 + step;
        const double t = static_cast<double>(step) / steps;
        const int r = static_cast<int>(std::lround(r0 + t * (r1 - r0)));
        grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = glyph;
      }
    }
  }

  std::string out;
  char buf[32];
  for (int r = 0; r < h; ++r) {
    const double y = hi - (hi - lo) * static_cast<double>(r) / (h - 1);
    std::snprintf(buf, sizeof(buf), "%7.2f |", y);
    out += buf;
    out += grid[static_cast<std::size_t>(r)];
    out += '\n';
  }
  out += "        +";
  out.append(static_cast<std::size_t>(w), '-');
  out += '\n';
  // x labels: first, middle, last
  std::snprintf(buf, sizeof(buf), "%-9.3g", xs.front());
  std::string xlab(9, ' ');
  xlab += buf;
  while (static_cast<int>(xlab.size()) < 9 + w / 2 - 4) xlab += ' ';
  std::snprintf(buf, sizeof(buf), "%.3g", xs[xs.size() / 2]);
  xlab += buf;
  while (static_cast<int>(xlab.size()) < 9 + w - 6) xlab += ' ';
  std::snprintf(buf, sizeof(buf), "%.3g", xs.back());
  xlab += buf;
  out += xlab + "\n";
  // legend
  out += "        ";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += ' ';
    out += kGlyphs[si % sizeof(kGlyphs)];
    out += '=' ;
    out += series[si].label;
  }
  out += '\n';
  return out;
}

}  // namespace con::util
