// Tiny command-line flag parser used by benches and examples.
//
// Supports `--name=value`, `--name value` and boolean `--name` /
// `--no-name`. Unknown flags are an error so typos in experiment scripts
// fail loudly instead of silently running the wrong configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace con::util {

class CliFlags {
 public:
  // Parses argv; throws std::invalid_argument on malformed input. Positional
  // arguments are collected in order.
  CliFlags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Call after all get_* lookups: throws if any flag was provided but never
  // consumed (catches typos).
  void check_unused() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace con::util
