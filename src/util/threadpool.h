// Small fixed-size thread pool with a parallel_for helper.
//
// The study runs on whatever cores are available; on a single-core host the
// pool degrades to inline execution with no thread overhead.
//
// parallel_for is exception-safe (a throwing body is rethrown on the
// calling thread after the range is drained) and safe to nest: the caller
// participates in its own work instead of blocking on pool capacity, so
// parallel_for inside a pool task cannot deadlock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace con::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task; fire-and-forget (use parallel_for for joined work).
  // Tasks must not throw out of the pool: a task that does is caught by the
  // worker, the in-flight count still drops, and the exception is dropped —
  // parallel_for layers its own exception capture on top of this.
  void submit(std::function<void()> task);

  // Block until all submitted tasks have completed.
  void wait_idle();

  // Process-wide pool. Created on first use; sized to the hardware unless
  // set_global_threads() was called first.
  static ThreadPool& global();

  // Set the size of the global pool. `n == 0` means hardware concurrency.
  // Must be called before the first global() use (e.g. from CLI parsing);
  // calls after the pool exists throw std::logic_error unless the size
  // already matches.
  static void set_global_threads(std::size_t n);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

// Split [begin, end) into chunks and run `fn(i)` for every i, using the
// global pool plus the calling thread. Runs inline when the range is small
// or the pool has one thread — the common case on the single-core
// reproduction host.
//
// Determinism: `fn` may run on any thread in any order, so it must write
// only to state owned by index i (e.g. a preallocated result slot).
// If any invocation throws, the remaining range is cancelled, every
// in-flight invocation finishes, and the first exception (by claim order)
// is rethrown on the calling thread. The pool survives.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

}  // namespace con::util
