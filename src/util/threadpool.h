// Small fixed-size thread pool with a parallel_for helper.
//
// The study runs on whatever cores are available; on a single-core host the
// pool degrades to inline execution with no thread overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace con::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task; fire-and-forget (use parallel_for for joined work).
  void submit(std::function<void()> task);

  // Block until all submitted tasks have completed.
  void wait_idle();

  // Process-wide pool sized to the hardware. Created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

// Split [begin, end) into chunks and run `fn(i)` for every i, using the
// global pool. Runs inline when the range is small or the pool has one
// thread — the common case on the single-core reproduction host.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

}  // namespace con::util
