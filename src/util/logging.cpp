#include "util/logging.h"

#include <cstdio>
#include <mutex>

#include "obs/obs.h"

namespace con::util {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

void log(LogLevel level, std::string_view msg) {
  if (level < log_level()) return;
  static std::mutex mu;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kWarn: tag = "W"; break;
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kOff: return;
  }
  // Elapsed time on the trace clock plus the obs thread id, so a log line
  // can be located inside a --trace export and vice versa.
  const double elapsed = obs::elapsed_seconds();
  const int tid = obs::this_thread_id();
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s %10.4f t%02d] %.*s\n", tag, elapsed, tid,
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace con::util
