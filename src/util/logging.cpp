#include "util/logging.h"

#include <cstdio>
#include <mutex>

namespace con::util {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

void log(LogLevel level, std::string_view msg) {
  if (level < log_level()) return;
  static std::mutex mu;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kWarn: tag = "W"; break;
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kOff: return;
  }
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %.*s\n", tag, static_cast<int>(msg.size()),
               msg.data());
}

}  // namespace con::util
