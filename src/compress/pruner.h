// Fine-grained weight pruning.
//
// Implements dynamic network surgery (Guo et al. 2016), the scheme the
// paper uses to generate its pruned models: masks are recomputed during
// fine-tuning from weight magnitudes with a hysteresis band (Eq. 3), and
// pruned weights keep receiving gradient so they can re-join. A one-shot
// mode (mask can only shrink, Han et al. 2016 style) is provided as the
// ablation baseline.
#pragma once

#include <vector>

#include "nn/sequential.h"
#include "nn/trainer.h"

namespace con::compress {

struct DnsConfig {
  // Target fraction of non-zero weights (the paper's x-axis in Fig. 2).
  double target_density = 0.5;
  // Hysteresis half-width: prune below α, restore above β = α·(1+h);
  // weights in [α, β] keep their previous mask state (Eq. 3).
  double hysteresis = 0.1;
  // Recompute masks every this many optimizer steps during fine-tuning.
  int mask_update_every = 4;
  // false = one-shot pruning: once masked, a weight never recovers.
  bool allow_recovery = true;
  // When > 0, the density target is annealed geometrically from 1.0 to
  // target_density over the first `anneal_steps` optimizer steps (via
  // hook()); the initial mask is all-ones. Cutting straight to an extreme
  // sparsity collapses momentum-SGD fine-tuning; gradual sparsification is
  // how DNS-style pruning runs in practice.
  int anneal_steps = 0;
};

class DnsPruner {
 public:
  // Attaches all-ones masks to every compressible parameter of `model` and
  // performs an initial mask update at the target density.
  DnsPruner(nn::Sequential& model, DnsConfig config);

  // Recompute masks from current weight magnitudes. Per-parameter (i.e.
  // per-layer) thresholds: α is the (1 - density)-quantile of |w| within
  // each weight tensor.
  void update_masks();

  // Current global density over compressible parameters.
  double density() const;

  const DnsConfig& config() const { return config_; }
  void set_target_density(double d);

  // Hook for nn::train_classifier: refreshes masks every
  // config.mask_update_every steps, annealing the density target when
  // config.anneal_steps > 0.
  nn::PostStepHook hook();

 private:
  // The density update_masks() currently aims for; equals the configured
  // target except while annealing.
  double current_target() const { return current_target_; }

  nn::Sequential* model_;
  DnsConfig config_;
  double current_target_;
  std::vector<nn::Parameter*> pruned_params_;
};

// Convenience: magnitude-prune a model copy to `density` (masks attached,
// single mask update, no fine-tuning).
nn::Sequential prune_to_density(const nn::Sequential& model, double density,
                                double hysteresis = 0.1);

}  // namespace con::compress
