// Compression pipelines: derive a compressed model from a trained baseline
// and fine-tune it, mirroring the paper's methodology (§3.2): "We used the
// Mayo tool to generate pruned and quantised models, and fine-tuned these
// models after pruning and quantisation."
#pragma once

#include "compress/pruner.h"
#include "compress/quant_activation.h"
#include "data/dataset.h"
#include "nn/trainer.h"

namespace con::compress {

struct FineTuneConfig {
  int epochs = 3;
  int batch_size = 32;
  float base_lr = 0.01f;  // paper: decays start from 0.01
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  std::uint64_t seed = 0xf17e;
};

// Clone `baseline`, prune to `density` with dynamic network surgery and
// fine-tune on `train` (masks refresh during training). Set
// `one_shot=true` for the Han-style ablation where masks never recover.
nn::Sequential make_pruned_model(const nn::Sequential& baseline,
                                 const data::Dataset& train, double density,
                                 const FineTuneConfig& config,
                                 bool one_shot = false);

// Clone `baseline`, quantise weights/activations to the paper's fixed-point
// format for `bitwidth` and fine-tune quantisation-aware (STE gradients).
nn::Sequential make_quantized_model(const nn::Sequential& baseline,
                                    const data::Dataset& train, int bitwidth,
                                    const FineTuneConfig& config,
                                    bool quantize_activations = true);

}  // namespace con::compress
