#include "compress/integer_model.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "compress/fixed_point.h"
#include "compress/quant_activation.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/tape.h"
#include "tensor/ops.h"
#include "util/threadpool.h"

namespace con::compress {

using tensor::Index;
using tensor::Tensor;

namespace {

// The weight format a layer's transform snaps onto, or nullptr when the
// layer is not fixed-point quantised.
const FixedPointFormat* weight_format_of(nn::Parameter& w) {
  const auto* t =
      dynamic_cast<const FixedPointWeightTransform*>(w.transform.get());
  return t == nullptr ? nullptr : &t->format();
}

bool int8_range(const FixedPointFormat& fmt) {
  return fmt.total_bits >= 2 && fmt.total_bits <= 8 &&
         fmt.fraction_bits() >= 0;
}

// Finds the model-wide activation format (the QuantActivation layers all
// share one); sets `why` and returns nullptr when absent or inconsistent.
const FixedPointFormat* activation_format_of(nn::Sequential& model,
                                             std::string& why) {
  const FixedPointFormat* afmt = nullptr;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const auto* qa = dynamic_cast<const QuantActivation*>(&model.layer(i));
    if (qa == nullptr) continue;
    const FixedPointFormat& f = qa->format();
    if (afmt != nullptr && (f.total_bits != afmt->total_bits ||
                            f.integer_bits != afmt->integer_bits)) {
      why = "mixed activation formats (" + afmt->to_string() + " vs " +
            f.to_string() + ")";
      return nullptr;
    }
    afmt = &f;
  }
  if (afmt == nullptr) {
    why = "activations are not quantised (no QuantActivation layers)";
  }
  return afmt;
}

nn::Int8FormatKey make_key(const FixedPointFormat& wfmt,
                           const FixedPointFormat& afmt) {
  return nn::Int8FormatKey{
      .weight_total_bits = wfmt.total_bits,
      .weight_integer_bits = wfmt.integer_bits,
      .act_total_bits = afmt.total_bits,
      .act_integer_bits = afmt.integer_bits,
  };
}

// Conservative int32 headroom screen: |Σ w·x| ≤ depth·2¹⁴; reserving 2³⁰
// for the bias leaves room for any plausible bias code. get_int8 performs
// the exact check (with the real bias codes) and throws past it.
bool depth_in_headroom(Index depth) {
  return depth * 16384 <= (std::int64_t{1} << 30);
}

}  // namespace

std::string integer_blocker(nn::Sequential& model) {
  std::string why;
  const FixedPointFormat* afmt = activation_format_of(model, why);
  if (afmt == nullptr) return why;
  if (!int8_range(*afmt)) {
    return "activation format " + afmt->to_string() +
           " does not fit the int8 backend";
  }
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    nn::Layer& layer = model.layer(i);
    nn::Parameter* w = nullptr;
    Index depth = 0;
    if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
      w = &lin->weight();
      depth = lin->in_features();
    } else if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      w = &conv->weight();
      depth = conv->spec().in_channels * conv->spec().kernel *
              conv->spec().kernel;
    } else {
      continue;
    }
    const FixedPointFormat* wfmt = weight_format_of(*w);
    if (wfmt == nullptr) {
      return layer.name() + ": weights are not fixed-point quantised";
    }
    if (!int8_range(*wfmt)) {
      return layer.name() + ": weight format " + wfmt->to_string() +
             " does not fit the int8 backend";
    }
    if (!depth_in_headroom(depth)) {
      return layer.name() + ": accumulation depth " + std::to_string(depth) +
             " exceeds int32 accumulator headroom";
    }
  }
  return "";
}

bool integer_executable(nn::Sequential& model) {
  return integer_blocker(model).empty();
}

Tensor integer_forward(nn::Sequential& model, const Tensor& x) {
  std::string why = integer_blocker(model);
  if (!why.empty()) {
    throw std::invalid_argument("integer_forward: " + why);
  }
  const FixedPointFormat* afmt = activation_format_of(model, why);
  Tensor cur = x;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    nn::Layer& layer = model.layer(i);
    if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
      cur = lin->forward_int8(
          cur, make_key(*weight_format_of(lin->weight()), *afmt));
    } else if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      cur = conv->forward_int8(
          cur, make_key(*weight_format_of(conv->weight()), *afmt));
    } else {
      // Float layers of the deployed graph (activations, pooling, the
      // requantising QuantActivation gates). Fresh per-layer slot: the
      // integer path never runs backward, so nothing needs to persist.
      nn::TapeSlot slot;
      cur = layer.forward(cur, /*train=*/false, slot);
    }
  }
  return cur;
}

std::pair<FixedPointFormat, FixedPointFormat> integer_formats(
    nn::Sequential& model) {
  std::string why = integer_blocker(model);
  if (!why.empty()) {
    throw std::invalid_argument("integer_formats: " + why);
  }
  const FixedPointFormat* afmt = activation_format_of(model, why);
  const FixedPointFormat* wfmt = nullptr;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    nn::Layer& layer = model.layer(i);
    nn::Parameter* w = nullptr;
    if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
      w = &lin->weight();
    } else if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      w = &conv->weight();
    } else {
      continue;
    }
    const FixedPointFormat* f = weight_format_of(*w);
    if (wfmt != nullptr && (f->total_bits != wfmt->total_bits ||
                            f->integer_bits != wfmt->integer_bits)) {
      throw std::invalid_argument("integer_formats: mixed weight formats (" +
                                  wfmt->to_string() + " vs " + f->to_string() +
                                  ")");
    }
    wfmt = f;
  }
  if (wfmt == nullptr) {
    throw std::invalid_argument(
        "integer_formats: model has no Linear/Conv2d layers");
  }
  return {*wfmt, *afmt};
}

namespace {

// Contiguous row-slice [lo, hi) of a batch-major tensor.
Tensor slice_rows(const Tensor& x, Index lo, Index hi) {
  std::vector<Index> dims = x.shape().dims();
  dims[0] = hi - lo;
  Tensor out{tensor::Shape(std::move(dims))};
  const Index stride = x.numel() / x.dim(0);
  std::memcpy(out.data(), x.data() + lo * stride,
              static_cast<std::size_t>((hi - lo) * stride) * sizeof(float));
  return out;
}

}  // namespace

std::vector<int> integer_predict(nn::Sequential& model, const Tensor& images,
                                 int batch_size) {
  std::string why = integer_blocker(model);
  if (!why.empty()) {
    throw std::invalid_argument("integer_predict: " + why);
  }
  const Index n = images.dim(0);
  std::vector<int> preds(static_cast<std::size_t>(n));
  const std::size_t num_batches =
      static_cast<std::size_t>((n + batch_size - 1) / batch_size);
  // The int8 forward on a shared model is thread-safe (the packed-panel
  // cache is internally synchronized); every batch writes only its own
  // slots of `preds`.
  util::parallel_for(0, num_batches, [&](std::size_t b) {
    const Index lo = static_cast<Index>(b) * batch_size;
    const Index hi = std::min(n, lo + batch_size);
    const Tensor logits = integer_forward(model, slice_rows(images, lo, hi));
    for (Index i = lo; i < hi; ++i) {
      preds[static_cast<std::size_t>(i)] =
          static_cast<int>(tensor::argmax_row(logits, i - lo));
    }
  });
  return preds;
}

double integer_accuracy(nn::Sequential& model, const Tensor& images,
                        const std::vector<int>& labels, int batch_size) {
  if (images.dim(0) != static_cast<Index>(labels.size())) {
    throw std::invalid_argument("integer_accuracy: image/label count mismatch");
  }
  const std::vector<int> preds = integer_predict(model, images, batch_size);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(labels.size());
}

}  // namespace con::compress
