#include "compress/finetune.h"

#include <cstdio>

namespace con::compress {

namespace {

nn::TrainConfig to_train_config(const FineTuneConfig& c) {
  return nn::TrainConfig{.epochs = c.epochs,
                         .batch_size = c.batch_size,
                         .base_lr = c.base_lr,
                         .momentum = c.momentum,
                         .weight_decay = c.weight_decay,
                         .shuffle_seed = c.seed,
                         .use_paper_lr_schedule = true};
}

}  // namespace

nn::Sequential make_pruned_model(const nn::Sequential& baseline,
                                 const data::Dataset& train, double density,
                                 const FineTuneConfig& config, bool one_shot) {
  nn::Sequential model = baseline.clone();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "-d%.3f", density);
  model.set_name(baseline.name() + buf);

  // Anneal the sparsity in over the first half of fine-tuning (see
  // DnsConfig::anneal_steps); only possible when there is a training run to
  // anneal across.
  const auto steps_per_epoch = static_cast<int>(
      (train.size() + config.batch_size - 1) / config.batch_size);
  const int total_steps = config.epochs * steps_per_epoch;
  DnsPruner pruner(model, DnsConfig{.target_density = density,
                                    .hysteresis = 0.1,
                                    .mask_update_every = 4,
                                    .allow_recovery = !one_shot,
                                    .anneal_steps =
                                        config.epochs > 0 ? total_steps / 3
                                                          : 0});
  if (config.epochs > 0) {
    nn::train_classifier(model, train.images, train.labels,
                         to_train_config(config), pruner.hook());
    // Land exactly on the target density regardless of where the last
    // annealed update fell.
    pruner.set_target_density(density);
    pruner.update_masks();
  }
  return model;
}

nn::Sequential make_quantized_model(const nn::Sequential& baseline,
                                    const data::Dataset& train, int bitwidth,
                                    const FineTuneConfig& config,
                                    bool quantize_activations) {
  QuantizeOptions options{
      .format = FixedPointFormat::paper_format(bitwidth),
      .quantize_weights = true,
      .quantize_activations = quantize_activations,
  };
  nn::Sequential model = quantize_model(baseline, options);
  if (config.epochs > 0) {
    nn::train_classifier(model, train.images, train.labels,
                         to_train_config(config));
  }
  return model;
}

}  // namespace con::compress
