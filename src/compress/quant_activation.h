// Activation fake-quantisation layer and the model transform that
// interleaves it after every nonlinearity (and the input), turning a float
// model into a "weights + activations quantised" model as in §3.2 of the
// paper.
#pragma once

#include "compress/fixed_point.h"
#include "nn/layer.h"
#include "nn/sequential.h"

namespace con::compress {

// Applies fixed-point quantisation to its input on forward; backward is the
// saturating straight-through estimator (gradient passes where the value
// was representable, is zeroed where it saturated).
class QuantActivation : public nn::Layer {
 public:
  explicit QuantActivation(FixedPointFormat fmt,
                           std::string layer_name = "quant_act");

  Tensor forward(const Tensor& x, bool train,
                 nn::TapeSlot& slot) const override;
  Tensor backward(const Tensor& grad_out, nn::TapeSlot& slot) const override;
  std::string name() const override { return name_; }
  std::unique_ptr<nn::Layer> clone() const override;

  const FixedPointFormat& format() const { return fmt_; }

 private:
  FixedPointFormat fmt_;
  std::string name_;
};

struct QuantizeOptions {
  FixedPointFormat format;
  bool quantize_weights = true;
  bool quantize_activations = true;
};

// Returns a deep copy of `model` with:
//  - FixedPointWeightTransform attached to every compressible parameter
//    (when quantize_weights), and
//  - QuantActivation layers inserted after every parameterised or
//    activation layer (when quantize_activations), so all intermediate
//    activations flow through the fixed-point grid.
nn::Sequential quantize_model(const nn::Sequential& model,
                              const QuantizeOptions& options);

// Remove quantisation (weight transforms + QuantActivation layers) from a
// model copy; used to measure how much behaviour the quantisation itself
// contributes.
nn::Sequential strip_quantization(const nn::Sequential& model);

}  // namespace con::compress
