#include "compress/integer_exec.h"

#include <cmath>
#include <stdexcept>

namespace con::compress {

using tensor::Index;
using tensor::Tensor;

namespace {

// Round-to-nearest-even right shift — the integer twin of the float path's
// std::nearbyint under the default rounding mode. shift must be >= 0.
std::int64_t rshift_round_half_even(std::int64_t v, int shift) {
  if (shift == 0) return v;
  const std::int64_t q = v >> shift;  // arithmetic shift: floor division
  const std::int64_t r = v - (q << shift);
  const std::int64_t half = std::int64_t{1} << (shift - 1);
  if (r > half || (r == half && (q & 1))) return q + 1;
  return q;
}

std::int64_t quantize_to_code(float v, const FixedPointFormat& fmt) {
  const float s = fmt.step();
  std::int64_t code =
      static_cast<std::int64_t>(std::nearbyint(static_cast<double>(v) / s));
  const std::int64_t lo = -(std::int64_t{1} << (fmt.total_bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (fmt.total_bits - 1)) - 1;
  if (code < lo) code = lo;
  if (code > hi) code = hi;
  return code;
}

}  // namespace

IntegerLinear lower_linear(const Tensor& weights, const Tensor& bias,
                           const FixedPointFormat& weight_format,
                           const FixedPointFormat& activation_format) {
  if (weights.rank() != 2 || bias.rank() != 1 ||
      bias.dim(0) != weights.dim(0)) {
    throw std::invalid_argument("lower_linear: expected W [out, in], b [out]");
  }
  IntegerLinear layer;
  layer.weight_format = weight_format;
  layer.activation_format = activation_format;
  layer.out_features = weights.dim(0);
  layer.in_features = weights.dim(1);

  const float sw = weight_format.step();
  layer.weight_codes.reserve(static_cast<std::size_t>(weights.numel()));
  for (Index i = 0; i < weights.numel(); ++i) {
    const double code_f = static_cast<double>(weights[i]) / sw;
    const auto code = static_cast<std::int64_t>(std::nearbyint(code_f));
    if (std::fabs(code_f - static_cast<double>(code)) > 1e-6) {
      throw std::invalid_argument(
          "lower_linear: weight is not on the quantisation grid — run "
          "fixed_point_quantize first");
    }
    layer.weight_codes.push_back(static_cast<std::int32_t>(code));
  }
  // Bias lives at the accumulator's scale sw * sx.
  const double acc_scale = static_cast<double>(sw) *
                           static_cast<double>(activation_format.step());
  layer.bias_codes.reserve(static_cast<std::size_t>(bias.numel()));
  for (Index i = 0; i < bias.numel(); ++i) {
    layer.bias_codes.push_back(static_cast<std::int64_t>(
        std::nearbyint(static_cast<double>(bias[i]) / acc_scale)));
  }
  return layer;
}

Tensor integer_linear_forward(const IntegerLinear& layer, const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != layer.in_features) {
    throw std::invalid_argument("integer_linear_forward: bad input shape");
  }
  const Index n = x.dim(0);
  const FixedPointFormat& afmt = layer.activation_format;
  const FixedPointFormat& wfmt = layer.weight_format;

  // Input codes.
  std::vector<std::int64_t> x_codes(static_cast<std::size_t>(x.numel()));
  for (Index i = 0; i < x.numel(); ++i) {
    x_codes[static_cast<std::size_t>(i)] = quantize_to_code(x[i], afmt);
  }

  // Requantising the accumulator (scale 2^-(fw+fa)) to the activation grid
  // (scale 2^-fa) is a right shift by fw bits.
  const int shift = wfmt.fraction_bits();
  const std::int64_t out_lo = -(std::int64_t{1} << (afmt.total_bits - 1));
  const std::int64_t out_hi =
      (std::int64_t{1} << (afmt.total_bits - 1)) - 1;

  Tensor y({n, layer.out_features});
  const float sa = afmt.step();
  for (Index i = 0; i < n; ++i) {
    for (Index o = 0; o < layer.out_features; ++o) {
      std::int64_t acc = layer.bias_codes[static_cast<std::size_t>(o)];
      const std::int32_t* wrow =
          layer.weight_codes.data() + o * layer.in_features;
      const std::int64_t* xrow = x_codes.data() + i * layer.in_features;
      for (Index k = 0; k < layer.in_features; ++k) {
        acc += static_cast<std::int64_t>(wrow[k]) * xrow[k];
      }
      std::int64_t out_code = rshift_round_half_even(acc, shift);
      if (out_code < out_lo) out_code = out_lo;
      if (out_code > out_hi) out_code = out_hi;
      y.at({i, o}) = static_cast<float>(out_code) * sa;
    }
  }
  return y;
}

Tensor fake_quant_linear_forward(const Tensor& weights, const Tensor& bias,
                                 const FixedPointFormat& wfmt,
                                 const FixedPointFormat& afmt,
                                 const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != weights.dim(1)) {
    throw std::invalid_argument("fake_quant_linear_forward: bad input shape");
  }
  const Index n = x.dim(0);
  const Index out = weights.dim(0);
  const Index in = weights.dim(1);
  // Quantise inputs to the activation grid (saturating to the *code* range,
  // matching quantize_to_code).
  Tensor xq({n, in});
  const float sa = afmt.step();
  for (Index i = 0; i < x.numel(); ++i) {
    xq[i] = static_cast<float>(quantize_to_code(x[i], afmt)) * sa;
  }
  // Bias snapped to the accumulator grid, as the integer path stores it.
  const double acc_scale =
      static_cast<double>(wfmt.step()) * static_cast<double>(sa);
  Tensor y({n, out});
  for (Index i = 0; i < n; ++i) {
    for (Index o = 0; o < out; ++o) {
      double acc = std::nearbyint(static_cast<double>(bias[o]) / acc_scale) *
                   acc_scale;
      for (Index k = 0; k < in; ++k) {
        acc += static_cast<double>(weights[o * in + k]) * xq[i * in + k];
      }
      // Requantise to the activation grid with saturation at the full code
      // range (same bounds as the integer path).
      const double code = std::nearbyint(acc / sa);
      const double lo = -std::ldexp(1.0, afmt.total_bits - 1);
      const double hi = std::ldexp(1.0, afmt.total_bits - 1) - 1.0;
      y.at({i, o}) =
          static_cast<float>(std::min(hi, std::max(lo, code)) * sa);
    }
  }
  return y;
}

float integer_vs_fake_divergence(const IntegerLinear& layer,
                                 const Tensor& weights, const Tensor& bias,
                                 const Tensor& x) {
  Tensor a = integer_linear_forward(layer, x);
  Tensor b = fake_quant_linear_forward(weights, bias, layer.weight_format,
                                       layer.activation_format, x);
  float worst = 0.0f;
  for (Index i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace con::compress
