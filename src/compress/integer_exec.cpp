#include "compress/integer_exec.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace con::compress {

using tensor::Index;
using tensor::Tensor;

namespace {

// Round-to-nearest-even right shift — the integer twin of the float path's
// std::nearbyint under the default rounding mode. shift must be >= 0.
std::int64_t rshift_round_half_even(std::int64_t v, int shift) {
  if (shift == 0) return v;
  const std::int64_t q = v >> shift;  // arithmetic shift: floor division
  const std::int64_t r = v - (q << shift);
  const std::int64_t half = std::int64_t{1} << (shift - 1);
  if (r > half || (r == half && (q & 1))) return q + 1;
  return q;
}

std::int64_t quantize_to_code(float v, const FixedPointFormat& fmt) {
  const float s = fmt.step();
  std::int64_t code =
      static_cast<std::int64_t>(std::nearbyint(static_cast<double>(v) / s));
  const std::int64_t lo = -(std::int64_t{1} << (fmt.total_bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (fmt.total_bits - 1)) - 1;
  if (code < lo) code = lo;
  if (code > hi) code = hi;
  return code;
}

// Lower an on-grid weight tensor to integer codes. A value off the grid is
// a quantiser bug upstream; silent re-rounding would hide it, so the throw
// names the offending element, its value, and the format it missed.
std::vector<std::int32_t> lower_weight_codes(const Tensor& weights,
                                             const FixedPointFormat& fmt,
                                             const char* op) {
  const float sw = fmt.step();
  std::vector<std::int32_t> codes;
  codes.reserve(static_cast<std::size_t>(weights.numel()));
  for (Index i = 0; i < weights.numel(); ++i) {
    const double code_f = static_cast<double>(weights[i]) / sw;
    const auto code = static_cast<std::int64_t>(std::nearbyint(code_f));
    if (std::fabs(code_f - static_cast<double>(code)) > 1e-6) {
      throw std::invalid_argument(
          std::string(op) + ": weight[" + std::to_string(i) + "] = " +
          std::to_string(weights[i]) + " is not on the " + fmt.to_string() +
          " grid (step " + std::to_string(sw) + ", nearest code " +
          std::to_string(code) + ") — run fixed_point_quantize first");
    }
    codes.push_back(static_cast<std::int32_t>(code));
  }
  return codes;
}

// Bias lives at the accumulator's scale sw * sa; it is snapped, not
// validated — the float model's bias is never quantised.
std::vector<std::int64_t> lower_bias_codes(const Tensor& bias,
                                           const FixedPointFormat& wfmt,
                                           const FixedPointFormat& afmt) {
  const double acc_scale =
      static_cast<double>(wfmt.step()) * static_cast<double>(afmt.step());
  std::vector<std::int64_t> codes;
  codes.reserve(static_cast<std::size_t>(bias.numel()));
  for (Index i = 0; i < bias.numel(); ++i) {
    codes.push_back(static_cast<std::int64_t>(
        std::nearbyint(static_cast<double>(bias[i]) / acc_scale)));
  }
  return codes;
}

}  // namespace

IntegerLinear lower_linear(const Tensor& weights, const Tensor& bias,
                           const FixedPointFormat& weight_format,
                           const FixedPointFormat& activation_format) {
  if (weights.rank() != 2 || bias.rank() != 1 ||
      bias.dim(0) != weights.dim(0)) {
    throw std::invalid_argument("lower_linear: expected W [out, in], b [out]");
  }
  IntegerLinear layer;
  layer.weight_format = weight_format;
  layer.activation_format = activation_format;
  layer.out_features = weights.dim(0);
  layer.in_features = weights.dim(1);
  layer.weight_codes =
      lower_weight_codes(weights, weight_format, "lower_linear");
  layer.bias_codes = lower_bias_codes(bias, weight_format, activation_format);
  return layer;
}

Tensor integer_linear_forward(const IntegerLinear& layer, const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != layer.in_features) {
    throw std::invalid_argument("integer_linear_forward: bad input shape");
  }
  const Index n = x.dim(0);
  const FixedPointFormat& afmt = layer.activation_format;
  const FixedPointFormat& wfmt = layer.weight_format;

  // Input codes.
  std::vector<std::int64_t> x_codes(static_cast<std::size_t>(x.numel()));
  for (Index i = 0; i < x.numel(); ++i) {
    x_codes[static_cast<std::size_t>(i)] = quantize_to_code(x[i], afmt);
  }

  // Requantising the accumulator (scale 2^-(fw+fa)) to the activation grid
  // (scale 2^-fa) is a right shift by fw bits.
  const int shift = wfmt.fraction_bits();
  const std::int64_t out_lo = -(std::int64_t{1} << (afmt.total_bits - 1));
  const std::int64_t out_hi =
      (std::int64_t{1} << (afmt.total_bits - 1)) - 1;

  Tensor y({n, layer.out_features});
  const float sa = afmt.step();
  for (Index i = 0; i < n; ++i) {
    for (Index o = 0; o < layer.out_features; ++o) {
      std::int64_t acc = layer.bias_codes[static_cast<std::size_t>(o)];
      const std::int32_t* wrow =
          layer.weight_codes.data() + o * layer.in_features;
      const std::int64_t* xrow = x_codes.data() + i * layer.in_features;
      for (Index k = 0; k < layer.in_features; ++k) {
        acc += static_cast<std::int64_t>(wrow[k]) * xrow[k];
      }
      std::int64_t out_code = rshift_round_half_even(acc, shift);
      if (out_code < out_lo) out_code = out_lo;
      if (out_code > out_hi) out_code = out_hi;
      y.at({i, o}) = static_cast<float>(out_code) * sa;
    }
  }
  return y;
}

Tensor fake_quant_linear_forward(const Tensor& weights, const Tensor& bias,
                                 const FixedPointFormat& wfmt,
                                 const FixedPointFormat& afmt,
                                 const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != weights.dim(1)) {
    throw std::invalid_argument("fake_quant_linear_forward: bad input shape");
  }
  const Index n = x.dim(0);
  const Index out = weights.dim(0);
  const Index in = weights.dim(1);
  // Quantise inputs to the activation grid (saturating to the *code* range,
  // matching quantize_to_code).
  Tensor xq({n, in});
  const float sa = afmt.step();
  for (Index i = 0; i < x.numel(); ++i) {
    xq[i] = static_cast<float>(quantize_to_code(x[i], afmt)) * sa;
  }
  // Bias snapped to the accumulator grid, as the integer path stores it.
  const double acc_scale =
      static_cast<double>(wfmt.step()) * static_cast<double>(sa);
  Tensor y({n, out});
  for (Index i = 0; i < n; ++i) {
    for (Index o = 0; o < out; ++o) {
      double acc = std::nearbyint(static_cast<double>(bias[o]) / acc_scale) *
                   acc_scale;
      for (Index k = 0; k < in; ++k) {
        acc += static_cast<double>(weights[o * in + k]) * xq[i * in + k];
      }
      // Requantise to the activation grid with saturation at the full code
      // range (same bounds as the integer path).
      const double code = std::nearbyint(acc / sa);
      const double lo = -std::ldexp(1.0, afmt.total_bits - 1);
      const double hi = std::ldexp(1.0, afmt.total_bits - 1) - 1.0;
      y.at({i, o}) =
          static_cast<float>(std::min(hi, std::max(lo, code)) * sa);
    }
  }
  return y;
}

IntegerConv2d lower_conv2d(const Tensor& weights, const Tensor& bias,
                           const FixedPointFormat& weight_format,
                           const FixedPointFormat& activation_format) {
  if (weights.rank() != 2 || bias.rank() != 1 ||
      bias.dim(0) != weights.dim(0)) {
    throw std::invalid_argument(
        "lower_conv2d: expected W [outC, C*kh*kw], b [outC]");
  }
  IntegerConv2d layer;
  layer.weight_format = weight_format;
  layer.activation_format = activation_format;
  layer.out_channels = weights.dim(0);
  layer.patch_size = weights.dim(1);
  layer.weight_codes =
      lower_weight_codes(weights, weight_format, "lower_conv2d");
  layer.bias_codes = lower_bias_codes(bias, weight_format, activation_format);
  return layer;
}

Tensor integer_conv2d_forward(const IntegerConv2d& layer, const Tensor& x,
                              const tensor::Conv2dGeometry& g) {
  if (x.rank() != 4 || x.dim(1) != g.in_channels || x.dim(2) != g.in_h ||
      x.dim(3) != g.in_w ||
      layer.patch_size != g.in_channels * g.kernel_h * g.kernel_w) {
    throw std::invalid_argument("integer_conv2d_forward: bad input shape");
  }
  const Index n = x.dim(0);
  const FixedPointFormat& afmt = layer.activation_format;
  const FixedPointFormat& wfmt = layer.weight_format;

  // Input codes, stored as exact float integers so the float im2col (and
  // its zero padding — code 0) lowers them with the production geometry.
  Tensor x_codes(x.shape());
  for (Index i = 0; i < x.numel(); ++i) {
    x_codes[i] = static_cast<float>(quantize_to_code(x[i], afmt));
  }
  const Tensor cols = tensor::im2col_batch(x_codes, g);
  const Index ncols = cols.dim(1);  // n · oh · ow

  const int shift = wfmt.fraction_bits();
  const std::int64_t out_lo = -(std::int64_t{1} << (afmt.total_bits - 1));
  const std::int64_t out_hi =
      (std::int64_t{1} << (afmt.total_bits - 1)) - 1;
  const float sa = afmt.step();
  const Index plane = g.out_h() * g.out_w();

  Tensor y({n, layer.out_channels, g.out_h(), g.out_w()});
  for (Index oc = 0; oc < layer.out_channels; ++oc) {
    const std::int32_t* wrow =
        layer.weight_codes.data() + oc * layer.patch_size;
    for (Index j = 0; j < ncols; ++j) {
      std::int64_t acc = layer.bias_codes[static_cast<std::size_t>(oc)];
      for (Index k = 0; k < layer.patch_size; ++k) {
        acc += static_cast<std::int64_t>(wrow[k]) *
               static_cast<std::int64_t>(cols[k * ncols + j]);
      }
      std::int64_t out_code = rshift_round_half_even(acc, shift);
      if (out_code < out_lo) out_code = out_lo;
      if (out_code > out_hi) out_code = out_hi;
      const Index img = j / plane, pix = j % plane;
      y[(img * layer.out_channels + oc) * plane + pix] =
          static_cast<float>(out_code) * sa;
    }
  }
  return y;
}

Tensor fake_quant_conv2d_forward(const Tensor& weights, const Tensor& bias,
                                 const FixedPointFormat& wfmt,
                                 const FixedPointFormat& afmt, const Tensor& x,
                                 const tensor::Conv2dGeometry& g) {
  if (x.rank() != 4 || weights.rank() != 2 ||
      weights.dim(1) != g.in_channels * g.kernel_h * g.kernel_w) {
    throw std::invalid_argument("fake_quant_conv2d_forward: bad input shape");
  }
  const Index n = x.dim(0);
  const Index outc = weights.dim(0);
  const Index patch = weights.dim(1);
  const float sa = afmt.step();
  Tensor xq(x.shape());
  for (Index i = 0; i < x.numel(); ++i) {
    xq[i] = static_cast<float>(quantize_to_code(x[i], afmt)) * sa;
  }
  const Tensor cols = tensor::im2col_batch(xq, g);
  const Index ncols = cols.dim(1);
  const double acc_scale =
      static_cast<double>(wfmt.step()) * static_cast<double>(sa);
  const Index plane = g.out_h() * g.out_w();
  Tensor y({n, outc, g.out_h(), g.out_w()});
  for (Index oc = 0; oc < outc; ++oc) {
    const float* wrow = weights.data() + oc * patch;
    const double b =
        std::nearbyint(static_cast<double>(bias[oc]) / acc_scale) * acc_scale;
    for (Index j = 0; j < ncols; ++j) {
      double acc = b;
      for (Index k = 0; k < patch; ++k) {
        acc += static_cast<double>(wrow[k]) *
               static_cast<double>(cols[k * ncols + j]);
      }
      const double code = std::nearbyint(acc / sa);
      const double lo = -std::ldexp(1.0, afmt.total_bits - 1);
      const double hi = std::ldexp(1.0, afmt.total_bits - 1) - 1.0;
      const Index img = j / plane, pix = j % plane;
      y[(img * outc + oc) * plane + pix] =
          static_cast<float>(std::min(hi, std::max(lo, code)) * sa);
    }
  }
  return y;
}

float integer_vs_fake_divergence(const IntegerLinear& layer,
                                 const Tensor& weights, const Tensor& bias,
                                 const Tensor& x) {
  Tensor a = integer_linear_forward(layer, x);
  Tensor b = fake_quant_linear_forward(weights, bias, layer.weight_format,
                                       layer.activation_format, x);
  float worst = 0.0f;
  for (Index i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace con::compress
