// Fixed-point number format and fake-quantisation, following the paper's
// §3.2/§4.2 setup: signed fixed-point with `integer_bits` to the left of the
// binary point (sign included) and the remaining bits as fraction.
//
// Paper bit allocations: "a 1-bit integer when bitwidth is 4, a 2-bit
// integer when bitwidth is 8, and 4-bit integers for the rest" — encoded in
// FixedPointFormat::paper_format().
#pragma once

#include <cstdint>
#include <string>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace con::compress {

using tensor::Tensor;

struct FixedPointFormat {
  int total_bits = 32;
  int integer_bits = 4;  // includes the sign

  int fraction_bits() const { return total_bits - integer_bits; }
  // Quantisation step 2^-f.
  float step() const;
  // Saturation bounds [lo, hi]: lo = -2^(i-1), hi = 2^(i-1) - step.
  float lo() const;
  float hi() const;

  // The paper's integer-bit allocation for a given bitwidth.
  static FixedPointFormat paper_format(int total_bits);

  std::string to_string() const;
};

// Quantise a single value: round-to-nearest onto the grid, then saturate.
float fixed_point_quantize(float v, const FixedPointFormat& fmt);

// Quantise a whole tensor (returns a new tensor).
Tensor fixed_point_quantize(const Tensor& t, const FixedPointFormat& fmt);

// Weight transform plugging fixed-point fake-quantisation into Parameter.
// The gradient gate implements the saturating straight-through estimator:
// gradient flows where |raw| is inside the representable range and is
// blocked where the value saturated.
class FixedPointWeightTransform : public nn::WeightTransform {
 public:
  explicit FixedPointWeightTransform(FixedPointFormat fmt) : fmt_(fmt) {}

  void apply(const Tensor& raw, Tensor& effective,
             Tensor& gate) const override;
  std::string describe() const override;

  const FixedPointFormat& format() const { return fmt_; }

 private:
  FixedPointFormat fmt_;
};

}  // namespace con::compress
