#include "compress/quant_activation.h"

#include <stdexcept>

#include <cmath>

#include "tensor/ops.h"

namespace con::compress {

using tensor::Index;
using tensor::Tensor;

QuantActivation::QuantActivation(FixedPointFormat fmt, std::string layer_name)
    : fmt_(fmt), name_(std::move(layer_name)) {}

Tensor QuantActivation::forward(const Tensor& x, bool /*train*/,
                                nn::TapeSlot& slot) const {
  Tensor y(x.shape());
  slot.aux = Tensor(x.shape());
  const Index n = x.numel();
  const float* in = x.data();
  float* out = y.data();
  float* g = slot.aux.data();
  const float lo = fmt_.lo();
  const float hi = fmt_.hi();
  const float s = fmt_.step();
  for (Index i = 0; i < n; ++i) {
    float q = std::nearbyint(in[i] / s) * s;
    const bool saturated = q < lo || q > hi;
    if (q < lo) q = lo;
    if (q > hi) q = hi;
    out[i] = q;
    g[i] = saturated ? 0.0f : 1.0f;
  }
  return y;
}

Tensor QuantActivation::backward(const Tensor& grad_out,
                                 nn::TapeSlot& slot) const {
  if (grad_out.shape() != slot.aux.shape()) {
    throw std::invalid_argument(name_ + ": grad shape mismatch");
  }
  return tensor::mul(grad_out, slot.aux);
}

std::unique_ptr<nn::Layer> QuantActivation::clone() const {
  return std::make_unique<QuantActivation>(fmt_, name_);
}

nn::Sequential quantize_model(const nn::Sequential& model,
                              const QuantizeOptions& options) {
  nn::Sequential q = model.clone();
  q.set_name(model.name() + "-q" + std::to_string(options.format.total_bits));

  if (options.quantize_weights) {
    auto transform =
        std::make_shared<const FixedPointWeightTransform>(options.format);
    for (nn::Parameter* p : q.parameters()) {
      if (p->compressible) {
        p->transform = transform;
        p->bump_version();
      }
    }
  }

  if (options.quantize_activations) {
    // Insert after every layer that produces activations the hardware would
    // keep in fixed point: parameterised layers and nonlinearities. Also
    // quantise the network input (sensor data enters the fixed-point
    // datapath first on a real accelerator).
    std::size_t i = 0;
    q.insert(0, std::make_unique<QuantActivation>(
                    options.format, "quant_in"));
    i = 1;
    while (i < q.num_layers()) {
      nn::Layer& layer = q.layer(i);
      const bool produces_activations =
          !layer.parameters().empty() || layer.name().rfind("relu", 0) == 0 ||
          layer.name().rfind("tanh", 0) == 0;
      const bool already_quant =
          dynamic_cast<QuantActivation*>(&layer) != nullptr;
      if (produces_activations && !already_quant) {
        q.insert(i + 1, std::make_unique<QuantActivation>(
                            options.format,
                            "quant_" + layer.name()));
        i += 2;
      } else {
        ++i;
      }
    }
  }
  return q;
}

nn::Sequential strip_quantization(const nn::Sequential& model) {
  nn::Sequential out(model.name() + "-dequant");
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const nn::Layer& layer = model.layer(i);
    if (dynamic_cast<const QuantActivation*>(&layer) != nullptr) continue;
    out.add(layer.clone());
  }
  for (nn::Parameter* p : out.parameters()) {
    p->transform.reset();
    // Without the bump a layer that already packed its quantized panels
    // would keep serving them after the transform is gone.
    p->bump_version();
  }
  return out;
}

}  // namespace con::compress
