#include "compress/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/ops.h"
#include "util/rng.h"

namespace con::compress {

using tensor::Index;

std::vector<float> kmeans_1d(const std::vector<float>& values, int k,
                             std::uint64_t seed, int iterations) {
  if (values.empty()) throw std::invalid_argument("kmeans_1d: no data");
  if (k < 1) throw std::invalid_argument("kmeans_1d: k must be >= 1");

  // Initialise centroids on linearly spaced quantiles of the sorted data —
  // deterministic and well-spread (the rng only breaks exact ties).
  std::vector<float> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  util::Rng rng(seed);
  std::vector<float> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    const double q = (c + 0.5) / static_cast<double>(k);
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    centroids.push_back(sorted[idx]);
  }
  std::sort(centroids.begin(), centroids.end());
  centroids.erase(std::unique(centroids.begin(), centroids.end()),
                  centroids.end());

  std::vector<double> sums(centroids.size());
  std::vector<std::size_t> counts(centroids.size());
  for (int it = 0; it < iterations; ++it) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (float v : values) {
      // nearest centroid by binary search over the sorted centroid list
      const auto up = std::lower_bound(centroids.begin(), centroids.end(), v);
      std::size_t best = static_cast<std::size_t>(
          std::min<std::ptrdiff_t>(up - centroids.begin(),
                                   static_cast<std::ptrdiff_t>(
                                       centroids.size() - 1)));
      if (best > 0 &&
          std::fabs(centroids[best - 1] - v) <= std::fabs(centroids[best] - v)) {
        best = best - 1;
      }
      sums[best] += v;
      counts[best] += 1;
    }
    bool moved = false;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (counts[c] == 0) {
        // dead centroid: respawn on a random data point
        centroids[c] = values[rng.below(values.size())];
        moved = true;
        continue;
      }
      const float next = static_cast<float>(sums[c] /
                                            static_cast<double>(counts[c]));
      if (next != centroids[c]) {
        centroids[c] = next;
        moved = true;
      }
    }
    std::sort(centroids.begin(), centroids.end());
    if (!moved) break;
  }
  centroids.erase(std::unique(centroids.begin(), centroids.end()),
                  centroids.end());
  return centroids;
}

Tensor snap_to_centroids(const Tensor& t,
                         const std::vector<float>& centroids) {
  if (centroids.empty()) {
    throw std::invalid_argument("snap_to_centroids: empty codebook");
  }
  Tensor out = t;
  for (float& v : out.flat()) {
    const auto up = std::lower_bound(centroids.begin(), centroids.end(), v);
    std::size_t best = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(up - centroids.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     centroids.size() - 1)));
    if (best > 0 &&
        std::fabs(centroids[best - 1] - v) <= std::fabs(centroids[best] - v)) {
      best = best - 1;
    }
    v = centroids[best];
  }
  return out;
}

ClusterWeightTransform::ClusterWeightTransform(std::vector<float> centroids,
                                               int bits)
    : centroids_(std::move(centroids)), bits_(bits) {
  if (centroids_.empty()) {
    throw std::invalid_argument("ClusterWeightTransform: empty codebook");
  }
  std::sort(centroids_.begin(), centroids_.end());
  // Zero must be representable so pruned weights stay pruned.
  if (std::none_of(centroids_.begin(), centroids_.end(),
                   [](float c) { return c == 0.0f; })) {
    centroids_.insert(
        std::lower_bound(centroids_.begin(), centroids_.end(), 0.0f), 0.0f);
  }
}

void ClusterWeightTransform::apply(const Tensor& raw, Tensor& effective,
                                   Tensor& gate) const {
  effective = snap_to_centroids(raw, centroids_);
  // Masked weights must remain exactly zero even if a nonzero centroid sits
  // closer to zero than the zero centroid (cannot happen after the ctor
  // guarantees a zero entry, but keep it robust).
  for (Index i = 0; i < raw.numel(); ++i) {
    if (raw[i] == 0.0f) effective[i] = 0.0f;
  }
  gate.fill(1.0f);  // plain straight-through
}

std::string ClusterWeightTransform::describe() const {
  return "weight clustering, " + std::to_string(centroids_.size()) +
         " shared values (" + std::to_string(bits_) + "-bit codes)";
}

nn::Sequential cluster_model(const nn::Sequential& model, int bits,
                             std::uint64_t seed) {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument("cluster_model: bits must be in [1, 16]");
  }
  nn::Sequential out = model.clone();
  out.set_name(model.name() + "-c" + std::to_string(bits));
  const int k = 1 << bits;
  for (nn::Parameter* p : out.parameters()) {
    if (!p->compressible) continue;
    // Cluster only the surviving (non-zero effective) weights, like deep
    // compression does after pruning.
    Tensor eff = p->effective();
    std::vector<float> nonzero;
    nonzero.reserve(static_cast<std::size_t>(eff.numel()));
    for (float v : eff.flat()) {
      if (v != 0.0f) nonzero.push_back(v);
    }
    if (nonzero.empty()) continue;
    std::vector<float> centroids =
        kmeans_1d(nonzero, k, seed ^ util::hash_name(p->name));
    p->transform =
        std::make_shared<const ClusterWeightTransform>(std::move(centroids),
                                                       bits);
    p->bump_version();
  }
  return out;
}

}  // namespace con::compress
