// True integer execution of quantised layers.
//
// Fake-quantisation (quant_activation.h) simulates fixed-point arithmetic
// in float; a real edge NPU computes with integers. This module provides
// the integer path for fully-connected and convolution layers — int64
// accumulation over integer weight/activation codes, followed by a
// requantising shift — and the verification that it produces bit-identical
// results to the fake-quantised float path. That equivalence is what
// justifies running the whole study in the (much more convenient)
// fake-quantised form. These are deliberately naive loops: they are the
// semantic oracle the production int8 backend (tensor/gemm_int8.h,
// nn/*::forward_int8, compress/integer_model.h) must match bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/fixed_point.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace con::compress {

// A fully-connected layer lowered to integer arithmetic. Weight codes are
// w / step(wfmt); input codes are x / step(xfmt); the bias is pre-scaled to
// the accumulator's fixed-point position.
struct IntegerLinear {
  FixedPointFormat weight_format;
  FixedPointFormat activation_format;
  tensor::Index in_features = 0;
  tensor::Index out_features = 0;
  std::vector<std::int32_t> weight_codes;  // [out, in]
  std::vector<std::int64_t> bias_codes;    // [out], at accumulator scale
};

// Lower quantised weights/bias to integer codes. `weights` must already lie
// on the weight format's grid (i.e. be the output of fixed_point_quantize);
// throws if any value is off-grid, because silent re-rounding would hide
// quantiser bugs.
IntegerLinear lower_linear(const tensor::Tensor& weights,
                           const tensor::Tensor& bias,
                           const FixedPointFormat& weight_format,
                           const FixedPointFormat& activation_format);

// Integer forward pass: quantise x to codes, int64 matmul, add bias codes,
// requantise the accumulator to the activation format (round-to-nearest,
// saturate). Returns float values on the activation grid.
tensor::Tensor integer_linear_forward(const IntegerLinear& layer,
                                      const tensor::Tensor& x);

// Reference float path: quantise x, multiply with the (already quantised)
// weights in float, add bias, quantise the result to the activation format.
tensor::Tensor fake_quant_linear_forward(const tensor::Tensor& weights,
                                         const tensor::Tensor& bias,
                                         const FixedPointFormat& wfmt,
                                         const FixedPointFormat& afmt,
                                         const tensor::Tensor& x);

// Max absolute divergence between the integer and fake-quant paths on a
// random input — the lowering is correct when this is exactly 0.
float integer_vs_fake_divergence(const IntegerLinear& layer,
                                 const tensor::Tensor& weights,
                                 const tensor::Tensor& bias,
                                 const tensor::Tensor& x);

// A convolution lowered to integer arithmetic over its im2col form:
// weight codes are the [out_channels, in_channels·kh·kw] patch matrix
// (nn/conv2d.h stores weights in exactly this shape), the bias at
// accumulator scale, the same requantising shift as the linear layer.
struct IntegerConv2d {
  FixedPointFormat weight_format;
  FixedPointFormat activation_format;
  tensor::Index out_channels = 0;
  tensor::Index patch_size = 0;  // in_channels · kernel_h · kernel_w
  std::vector<std::int32_t> weight_codes;  // [out_channels, patch_size]
  std::vector<std::int64_t> bias_codes;    // [out_channels], acc scale
};

// Lower quantised conv weights/bias to integer codes. Same grid contract
// and off-grid diagnostics as lower_linear.
IntegerConv2d lower_conv2d(const tensor::Tensor& weights,
                           const tensor::Tensor& bias,
                           const FixedPointFormat& weight_format,
                           const FixedPointFormat& activation_format);

// Integer conv forward: quantise x [N,C,H,W] to codes, im2col (padding is
// code 0), int64 patch products plus bias codes, requantise. Returns
// [N, outC, oh, ow] float values on the activation grid.
tensor::Tensor integer_conv2d_forward(const IntegerConv2d& layer,
                                      const tensor::Tensor& x,
                                      const tensor::Conv2dGeometry& g);

// Reference float path for the convolution, mirroring
// fake_quant_linear_forward: quantise x, float im2col product with the
// quantised weights, snapped bias, quantise the result.
tensor::Tensor fake_quant_conv2d_forward(const tensor::Tensor& weights,
                                         const tensor::Tensor& bias,
                                         const FixedPointFormat& wfmt,
                                         const FixedPointFormat& afmt,
                                         const tensor::Tensor& x,
                                         const tensor::Conv2dGeometry& g);

}  // namespace con::compress
