// True integer execution of quantised layers.
//
// Fake-quantisation (quant_activation.h) simulates fixed-point arithmetic
// in float; a real edge NPU computes with integers. This module provides
// the integer path for fully-connected layers — int64 accumulation over
// integer weight/activation codes, followed by a requantising shift — and
// the verification that it produces bit-identical results to the
// fake-quantised float path. That equivalence is what justifies running the
// whole study in the (much more convenient) fake-quantised form.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/fixed_point.h"
#include "tensor/tensor.h"

namespace con::compress {

// A fully-connected layer lowered to integer arithmetic. Weight codes are
// w / step(wfmt); input codes are x / step(xfmt); the bias is pre-scaled to
// the accumulator's fixed-point position.
struct IntegerLinear {
  FixedPointFormat weight_format;
  FixedPointFormat activation_format;
  tensor::Index in_features = 0;
  tensor::Index out_features = 0;
  std::vector<std::int32_t> weight_codes;  // [out, in]
  std::vector<std::int64_t> bias_codes;    // [out], at accumulator scale
};

// Lower quantised weights/bias to integer codes. `weights` must already lie
// on the weight format's grid (i.e. be the output of fixed_point_quantize);
// throws if any value is off-grid, because silent re-rounding would hide
// quantiser bugs.
IntegerLinear lower_linear(const tensor::Tensor& weights,
                           const tensor::Tensor& bias,
                           const FixedPointFormat& weight_format,
                           const FixedPointFormat& activation_format);

// Integer forward pass: quantise x to codes, int64 matmul, add bias codes,
// requantise the accumulator to the activation format (round-to-nearest,
// saturate). Returns float values on the activation grid.
tensor::Tensor integer_linear_forward(const IntegerLinear& layer,
                                      const tensor::Tensor& x);

// Reference float path: quantise x, multiply with the (already quantised)
// weights in float, add bias, quantise the result to the activation format.
tensor::Tensor fake_quant_linear_forward(const tensor::Tensor& weights,
                                         const tensor::Tensor& bias,
                                         const FixedPointFormat& wfmt,
                                         const FixedPointFormat& afmt,
                                         const tensor::Tensor& x);

// Max absolute divergence between the integer and fake-quant paths on a
// random input — the lowering is correct when this is exactly 0.
float integer_vs_fake_divergence(const IntegerLinear& layer,
                                 const tensor::Tensor& weights,
                                 const tensor::Tensor& bias,
                                 const tensor::Tensor& x);

}  // namespace con::compress
