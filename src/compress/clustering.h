// Weight clustering (shared weights), the "trained quantization" stage of
// deep compression (Han et al. 2016b, cited in §2.2).
//
// Each compressible parameter's non-zero weights are clustered with k-means
// in 1-D; the effective weights are the cluster centroids, so a parameter
// ships as ceil(log2 k) bits per weight plus a tiny codebook. The transform
// plugs into nn::Parameter like fixed-point quantisation does, which lets
// the transfer harness ask the paper's question for a third compression
// family: do adversarial samples survive codebook quantisation?
#pragma once

#include <cstdint>
#include <vector>

#include "nn/parameter.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace con::compress {

using tensor::Tensor;

// 1-D k-means. Returns the k centroids (fewer if the data has fewer
// distinct values); deterministic in `seed`.
std::vector<float> kmeans_1d(const std::vector<float>& values, int k,
                             std::uint64_t seed, int iterations = 25);

// Snap every element of `t` to its nearest centroid.
Tensor snap_to_centroids(const Tensor& t, const std::vector<float>& centroids);

// Weight transform: cluster once at construction (per parameter), then snap
// in apply(). Zero survives as its own implicit centroid so pruning masks
// compose. The gradient gate is all-ones (plain straight-through): cluster
// assignment is piecewise constant, so STE is the standard choice.
class ClusterWeightTransform : public nn::WeightTransform {
 public:
  ClusterWeightTransform(std::vector<float> centroids, int bits);

  void apply(const Tensor& raw, Tensor& effective,
             Tensor& gate) const override;
  std::string describe() const override;

  const std::vector<float>& centroids() const { return centroids_; }
  int bits() const { return bits_; }

 private:
  std::vector<float> centroids_;  // sorted
  int bits_;
};

// Deep-compression-style model transform: clusters every compressible
// parameter's (masked) weights into 2^bits shared values and attaches the
// snap transform. Returns a deep copy; `model` is untouched.
nn::Sequential cluster_model(const nn::Sequential& model, int bits,
                             std::uint64_t seed = 0xc1u);

}  // namespace con::compress
