// Whole-model deployed-integer inference.
//
// quantize_model (quant_activation.h) produces the *simulated* quantised
// model: weights and activations snap to the fixed-point grid but every
// multiply is still float. This module walks that same model and executes
// its Linear/Conv2d layers on the real int8 backend (nn::*::forward_int8 →
// tensor/gemm_int8.h): int8 codes, int32 accumulators, round-half-even
// requantisation — each quantised layer bit-identical to the
// compress::integer_exec oracle. Layers without an integer implementation
// (activations, pooling, batch-norm, the interleaved QuantActivation
// gates) run their normal float forward; QuantActivation re-snaps their
// outputs onto the grid, exactly as a deployed runtime would requantise
// between integer ops.
//
// The integer model is a *distinct measurement target* from the simulated
// one: the simulated path accumulates in float/double where deployment
// accumulates in int32 and requantises between layers, so logits (and thus
// attack transfer) can differ wherever an unquantised boundary — e.g.
// average pooling — feeds off-grid values into the next layer. core::Study
// measures attack transfer against this deployed form as its own scenario
// axis.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "compress/fixed_point.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace con::compress {

// Empty when `model` can run on the int8 backend; otherwise a
// human-readable reason why not. Executable means: activations quantised
// by QuantActivation layers sharing one ≤ 8-bit format, every Linear /
// Conv2d weight snapped by a ≤ 8-bit FixedPointWeightTransform, and
// accumulation depths inside int32 headroom. With the paper's bitwidth
// grid {4, 8, 12, 16, 24, 32}, exactly the 4- and 8-bit variants qualify.
std::string integer_blocker(nn::Sequential& model);
bool integer_executable(nn::Sequential& model);

// Deployed-integer forward pass. Throws std::invalid_argument (with the
// blocker text) when the model is not integer-executable. Results are
// bit-identical for any --threads and any CON_KERNEL (dispatch.h integer
// precision contract).
tensor::Tensor integer_forward(nn::Sequential& model, const tensor::Tensor& x);

// The (weight, activation) fixed-point formats the backend executes
// `model` with. Throws when the model is not integer-executable or when
// its Linear/Conv2d weight formats disagree (quantize_model always applies
// one format model-wide, so mixed formats indicate a hand-built model the
// study's derivation attributes cannot describe).
std::pair<FixedPointFormat, FixedPointFormat> integer_formats(
    nn::Sequential& model);

// Deployed-integer counterparts of nn::predict / nn::evaluate_accuracy:
// per-sample argmax classes and top-1 accuracy measured through
// integer_forward. Batches are evaluated in parallel over the global
// thread pool into per-sample slots, and the integer path itself is
// bit-identical under any thread count, so both values are thread-count
// and CON_KERNEL invariant.
std::vector<int> integer_predict(nn::Sequential& model,
                                 const tensor::Tensor& images,
                                 int batch_size = 64);
double integer_accuracy(nn::Sequential& model, const tensor::Tensor& images,
                        const std::vector<int>& labels, int batch_size = 64);

}  // namespace con::compress
