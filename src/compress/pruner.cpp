#include "compress/pruner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace con::compress {

using tensor::Index;
using tensor::Tensor;

namespace {

// The (1-density)-quantile of |values|: pruning weights with magnitude
// strictly below the returned α keeps `keep = round(density·n)` weights
// (modulo ties at α itself).
float magnitude_threshold(const Tensor& values, double density) {
  const Index n = values.numel();
  const auto keep = static_cast<Index>(
      std::llround(density * static_cast<double>(n)));
  if (keep >= n) return 0.0f;  // keep everything: |w| < 0 never holds
  std::vector<float> mags(static_cast<std::size_t>(n));
  const float* d = values.data();
  for (Index i = 0; i < n; ++i) mags[static_cast<std::size_t>(i)] =
      std::fabs(d[i]);
  if (keep <= 0) {
    // prune everything: α above the largest magnitude
    return *std::max_element(mags.begin(), mags.end()) * 2.0f + 1.0f;
  }
  // α = smallest surviving magnitude: the (n-keep)-th order statistic
  // (0-indexed). Everything strictly below it is pruned.
  const std::size_t cut = static_cast<std::size_t>(n - keep);
  std::nth_element(mags.begin(), mags.begin() + cut, mags.end());
  return mags[cut];
}

}  // namespace

DnsPruner::DnsPruner(nn::Sequential& model, DnsConfig config)
    : model_(&model), config_(config),
      current_target_(config.anneal_steps > 0 ? 1.0 : config.target_density) {
  if (config_.target_density <= 0.0 || config_.target_density > 1.0) {
    throw std::invalid_argument("target_density must be in (0, 1]");
  }
  if (config_.hysteresis < 0.0) {
    throw std::invalid_argument("hysteresis must be non-negative");
  }
  for (nn::Parameter* p : model_->parameters()) {
    if (!p->compressible) continue;
    if (!p->has_mask()) {
      p->mask = Tensor(p->value.shape(), 1.0f);
      p->bump_version();
    }
    pruned_params_.push_back(p);
  }
  if (pruned_params_.empty()) {
    throw std::invalid_argument("model has no compressible parameters");
  }
  update_masks();
}

void DnsPruner::update_masks() {
  for (nn::Parameter* p : pruned_params_) {
    const float alpha = magnitude_threshold(p->value, current_target_);
    const float beta = alpha * static_cast<float>(1.0 + config_.hysteresis);
    const Index n = p->value.numel();
    const float* w = p->value.data();
    float* m = p->mask.data();
    for (Index i = 0; i < n; ++i) {
      const float mag = std::fabs(w[i]);
      if (mag < alpha) {
        m[i] = 0.0f;  // prune (Eq. 3 first branch)
      } else if (mag > beta) {
        // restore (Eq. 3 third branch) — unless one-shot mode forbids it
        if (config_.allow_recovery || m[i] != 0.0f) m[i] = 1.0f;
      }
      // in the hysteresis band [α, β] the mask keeps its previous state
    }
    // Mask rewritten in place: invalidate packed-weight panels built from
    // the old effective weights (nn/packed_weights.h).
    p->bump_version();
  }
}

double DnsPruner::density() const {
  Index total = 0, nonzero = 0;
  for (const nn::Parameter* p : pruned_params_) {
    total += p->mask.numel();
    for (float m : p->mask.flat()) {
      if (m != 0.0f) ++nonzero;
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(nonzero) / static_cast<double>(total);
}

void DnsPruner::set_target_density(double d) {
  if (d <= 0.0 || d > 1.0) {
    throw std::invalid_argument("target_density must be in (0, 1]");
  }
  config_.target_density = d;
  current_target_ = d;
}

nn::PostStepHook DnsPruner::hook() {
  return [this](const nn::StepContext& ctx) {
    if (config_.mask_update_every <= 0 ||
        ctx.global_step % config_.mask_update_every != 0) {
      return;
    }
    if (config_.anneal_steps > 0 && ctx.global_step < config_.anneal_steps) {
      // Geometric interpolation 1.0 -> target: equal relative cuts per
      // update, so early steps remove little and the network adapts.
      const double frac = static_cast<double>(ctx.global_step) /
                          static_cast<double>(config_.anneal_steps);
      current_target_ = std::pow(config_.target_density, frac);
    } else {
      current_target_ = config_.target_density;
    }
    update_masks();
  };
}

nn::Sequential prune_to_density(const nn::Sequential& model, double density,
                                double hysteresis) {
  nn::Sequential pruned = model.clone();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "-d%.2f", density);
  pruned.set_name(model.name() + buf);
  DnsPruner pruner(pruned,
                   DnsConfig{.target_density = density,
                             .hysteresis = hysteresis});
  return pruned;
}

}  // namespace con::compress
