#include "compress/fixed_point.h"

#include <cmath>
#include <stdexcept>

namespace con::compress {

using tensor::Index;

float FixedPointFormat::step() const {
  return std::ldexp(1.0f, -fraction_bits());
}

float FixedPointFormat::lo() const {
  return -std::ldexp(1.0f, integer_bits - 1);
}

float FixedPointFormat::hi() const {
  return std::ldexp(1.0f, integer_bits - 1) - step();
}

FixedPointFormat FixedPointFormat::paper_format(int total_bits) {
  if (total_bits < 2) {
    throw std::invalid_argument("fixed-point bitwidth must be >= 2");
  }
  int integer_bits = 4;
  if (total_bits == 4) integer_bits = 1;
  else if (total_bits == 8) integer_bits = 2;
  if (integer_bits >= total_bits) integer_bits = total_bits - 1;
  return FixedPointFormat{.total_bits = total_bits,
                          .integer_bits = integer_bits};
}

std::string FixedPointFormat::to_string() const {
  return "Q" + std::to_string(integer_bits) + "." +
         std::to_string(fraction_bits()) + " (" + std::to_string(total_bits) +
         " bits)";
}

float fixed_point_quantize(float v, const FixedPointFormat& fmt) {
  const float s = fmt.step();
  float q = std::nearbyint(v / s) * s;
  const float lo = fmt.lo();
  const float hi = fmt.hi();
  if (q < lo) q = lo;
  if (q > hi) q = hi;
  return q;
}

Tensor fixed_point_quantize(const Tensor& t, const FixedPointFormat& fmt) {
  Tensor out = t;
  for (float& v : out.flat()) v = fixed_point_quantize(v, fmt);
  return out;
}

void FixedPointWeightTransform::apply(const Tensor& raw, Tensor& effective,
                                      Tensor& gate) const {
  const Index n = raw.numel();
  const float* in = raw.data();
  float* out = effective.data();
  float* g = gate.data();
  const float lo = fmt_.lo();
  const float hi = fmt_.hi();
  const float s = fmt_.step();
  for (Index i = 0; i < n; ++i) {
    float q = std::nearbyint(in[i] / s) * s;
    const bool saturated = q < lo || q > hi;
    if (q < lo) q = lo;
    if (q > hi) q = hi;
    out[i] = q;
    g[i] = saturated ? 0.0f : 1.0f;
  }
}

std::string FixedPointWeightTransform::describe() const {
  return "fixed-point " + fmt_.to_string();
}

}  // namespace con::compress
